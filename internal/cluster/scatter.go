// scatter.go: the scatter-gather coordinator for partitioned cluster
// mode. One ScatterRouter fronts N partitions (each a replicated group
// behind its own Router): identify traffic fans out to every partition
// and the per-partition verdicts merge back into one — byte-identical to
// a single node scanning the union database — while keyed mutations
// (enroll, add, remove) route to the one partition that owns the device
// name. DESIGN.md §14 carries the merge-correctness argument, CLUSTER.md
// the operator contract.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/prng"
	"probablecause/internal/server"
)

// Scatter metrics: the coordinator's RED triple, fan-out accounting, and
// the straggler histogram (slowest minus fastest partition per fan-out —
// the tail a scatter layer adds over a single node).
var (
	redScatter      = obs.NewRED(obs.Default, "cluster.scatter")
	cScatterFans    = obs.C("cluster.scatter.fanouts")
	cScatterRefused = obs.C("cluster.scatter.partial_refusals")
	cScatterKeyed   = obs.C("cluster.scatter.keyed_routes")
	hStraggler      = obs.H("cluster.scatter.straggler_nanos")
)

// ScatterConfig parameterizes the scatter-gather coordinator.
type ScatterConfig struct {
	// Map is the cluster's static partition assignment (every process
	// must be built from the same spec string).
	Map *PartitionMap
	// Router is the template each per-partition Router is stamped from:
	// Backends and Partition are overwritten per partition, the Seed is
	// decorrelated per partition, everything else (client, probe pacing,
	// timeouts, retry shape, breaker tuning) applies to all of them. A
	// nil Budget gives every partition its own default budget, so one
	// flapping partition cannot exhaust the others' retry allowance.
	Router RouterConfig
}

// ScatterRouter is the partitioned cluster's front door. It composes one
// Router per partition — reusing the probe loop, failover driver,
// per-backend breakers, and budgeted retries unchanged — and adds the
// fan-out/merge layer on top.
type ScatterRouter struct {
	m       *PartitionMap
	routers []*Router
	hParts  []*obs.Histogram // per-partition fan-out latency
}

// NewScatterRouter builds the per-partition routers and starts their
// probe loops.
func NewScatterRouter(cfg ScatterConfig) (*ScatterRouter, error) {
	if cfg.Map == nil || cfg.Map.Len() == 0 {
		return nil, fmt.Errorf("cluster: scatter router needs a partition map")
	}
	s := &ScatterRouter{m: cfg.Map}
	for i := 0; i < cfg.Map.Len(); i++ {
		p := cfg.Map.Partition(i)
		rc := cfg.Router
		rc.Backends = p.Backends
		rc.Partition = p.Name
		rc.Seed = prng.Hash(cfg.Router.Seed, uint64(i), 0x73636174746572)
		r, err := NewRouter(rc)
		if err != nil {
			for _, started := range s.routers {
				started.Close()
			}
			return nil, fmt.Errorf("cluster: partition %s: %w", p.Name, err)
		}
		s.routers = append(s.routers, r)
		s.hParts = append(s.hParts, obs.H("cluster.scatter.partition."+p.Name+".nanos"))
	}
	return s, nil
}

// Close stops every partition router's probe loop.
func (s *ScatterRouter) Close() {
	for _, r := range s.routers {
		r.Close()
	}
}

// Map returns the partition map the coordinator routes by.
func (s *ScatterRouter) Map() *PartitionMap { return s.m }

// PartitionRouter returns partition i's Router (tests, topology).
func (s *ScatterRouter) PartitionRouter(i int) *Router { return s.routers[i] }

// route wraps a handler with the coordinator's observability: a request
// trace rooted at the endpoint (fan-out legs file as child spans) and
// the scatter RED triple.
func (s *ScatterRouter) route(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !obs.On() {
			fn(w, r)
			return
		}
		ctx, root := obs.StartRequest(r.Context(), "scatter."+endpoint, r.Header.Get(obs.TraceHeader))
		if h := root.Header(); h != "" {
			w.Header().Set(obs.TraceHeader, h)
		}
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		fn(sw, r.WithContext(ctx))
		root.End()
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		redScatter.Observe(time.Since(t0).Nanoseconds(), code >= 500)
	}
}

// statusWriter mirrors the server package's response-status capture.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Handler returns the coordinator's HTTP surface:
//
//	POST   /v1/identify           fan to all partitions, merge verdicts
//	POST   /v1/identify-batch     fan once, merge per query
//	POST   /v1/enroll             route to the name's owning partition
//	GET    /v1/enroll/{id}/status scatter; first partition that knows wins
//	POST   /v1/db                 route to the name's owning partition
//	DELETE /v1/db?name=N          route to the name's owning partition
//	POST   /v1/characterize       keyed when registering, else partition 0
//	POST   /v1/snapshot           fan to all partitions (checkpoint each)
//	GET    /v1/db                 aggregated stats across partitions
//	GET    /v1/cluster/topology   partition map + per-backend router view
//	GET    /healthz               coordinator liveness
//	GET    /readyz                503 until every partition is servable
//	GET    /metrics               obs registry
func (s *ScatterRouter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/identify", s.route("identify", s.handleIdentify))
	mux.HandleFunc("POST /v1/identify-batch", s.route("identify_batch", s.handleIdentifyBatch))
	mux.HandleFunc("POST /v1/enroll", s.route("enroll", s.keyedFromBody("name")))
	mux.HandleFunc("GET /v1/enroll/{id}/status", s.route("enroll_status", s.handleEnrollStatus))
	mux.HandleFunc("POST /v1/db", s.route("db_add", s.keyedFromBody("name")))
	mux.HandleFunc("DELETE /v1/db", s.route("db_remove", s.handleRemove))
	mux.HandleFunc("POST /v1/characterize", s.route("characterize", s.keyedFromBody("name")))
	mux.HandleFunc("POST /v1/snapshot", s.route("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /v1/db", s.route("db", s.handleStats))
	mux.HandleFunc("GET /v1/cluster/topology", s.route("topology", s.handleTopology))
	mux.Handle("GET /metrics", obs.MetricsHandler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// ---- fan-out plumbing ----

// partResult is one partition's leg of a fan-out.
type partResult struct {
	res ForwardResult
	err error
	dur time.Duration
}

// fan sends the same request to every partition concurrently and waits
// for all legs. Each leg runs under the partition router's own retry
// budget and breakers; the straggler histogram records the spread.
func (s *ScatterRouter) fan(ctx context.Context, method, uri string, header http.Header, body []byte) []partResult {
	if obs.On() {
		cScatterFans.Inc()
	}
	out := make([]partResult, len(s.routers))
	var wg sync.WaitGroup
	for i := range s.routers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := obs.SpanFrom(ctx).Child("scatter." + s.m.Partition(i).Name)
			t0 := time.Now()
			res, err := s.routers[i].Forward(ctx, method, uri, header, body, false)
			out[i].dur = time.Since(t0)
			out[i].res, out[i].err = res, err
			if obs.On() {
				s.hParts[i].Observe(out[i].dur.Nanoseconds())
				sp.SetAttr("status", res.Status)
				if err != nil {
					sp.SetAttr("err", err.Error())
				}
			}
			sp.End()
		}(i)
	}
	wg.Wait()
	if obs.On() && len(out) > 1 {
		min, max := out[0].dur, out[0].dur
		for _, p := range out[1:] {
			if p.dur < min {
				min = p.dur
			}
			if p.dur > max {
				max = p.dur
			}
		}
		hStraggler.Observe((max - min).Nanoseconds())
	}
	return out
}

// gatherError turns a fan-out's failures into the client response: the
// coordinator never serves a partial verdict. A leg that produced no
// definitive response, or answered with a retryable server error, makes
// the whole query 503 naming the partition (the client retries; the
// partition router already spent its budget). A definitive 4xx from any
// partition relays as-is — every partition validates identically, so the
// first refusal speaks for all. Returns ok=false after writing.
func (s *ScatterRouter) gatherError(w http.ResponseWriter, results []partResult) bool {
	for i, p := range results {
		if p.err != nil || p.res.Status >= 500 {
			if obs.On() {
				cScatterRefused.Inc()
			}
			detail := ""
			if p.err != nil {
				detail = ": " + p.err.Error()
			} else {
				detail = fmt.Sprintf(": status %d", p.res.Status)
			}
			fail(w, http.StatusServiceUnavailable,
				fmt.Sprintf("partition %s unavailable%s", s.m.Partition(i).Name, detail))
			return false
		}
	}
	for _, p := range results {
		if p.res.Status != http.StatusOK {
			respond(w, p.res.Status, p.res.Header, p.res.Body)
			return false
		}
	}
	return true
}

// mergeWire folds per-partition wire verdicts into the global verdict,
// in partition-ordinal order. Entry ids are already namespaced into the
// disjoint global id space by each backend, so (distance, id) ordering
// across partitions is exactly the single-node tie-break; Matches sums
// because partitions hold disjoint entries. Cached only when every
// partition answered from its cache — a merged verdict is only as warm
// as its coldest leg.
func mergeWire(parts []server.VerdictJSON) server.VerdictJSON {
	merged := fingerprint.Verdict{Index: -1, Distance: 2}
	cached := true
	for _, p := range parts {
		fingerprint.MergeVerdict(&merged, p.Verdict())
		cached = cached && p.Cached
	}
	return server.WireVerdict(merged, cached)
}

// readBody slurps and bounds the request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, DefaultMaxForwardBody+1))
	if err != nil {
		fail(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > DefaultMaxForwardBody {
		fail(w, http.StatusRequestEntityTooLarge, "request body too large")
		return nil, false
	}
	return body, true
}

// ---- scatter reads ----

func (s *ScatterRouter) handleIdentify(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	results := s.fan(r.Context(), http.MethodPost, "/v1/identify", r.Header, body)
	if !s.gatherError(w, results) {
		return
	}
	parts := make([]server.VerdictJSON, len(results))
	for i, p := range results {
		if err := json.Unmarshal(p.res.Body, &parts[i]); err != nil {
			fail(w, http.StatusBadGateway,
				fmt.Sprintf("partition %s returned an undecodable verdict: %v", s.m.Partition(i).Name, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, mergeWire(parts))
}

func (s *ScatterRouter) handleIdentifyBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	results := s.fan(r.Context(), http.MethodPost, "/v1/identify-batch", r.Header, body)
	if !s.gatherError(w, results) {
		return
	}
	batches := make([]server.BatchResponseJSON, len(results))
	n := -1
	for i, p := range results {
		if err := json.Unmarshal(p.res.Body, &batches[i]); err != nil {
			fail(w, http.StatusBadGateway,
				fmt.Sprintf("partition %s returned an undecodable batch: %v", s.m.Partition(i).Name, err))
			return
		}
		if n == -1 {
			n = len(batches[i].Results)
		} else if len(batches[i].Results) != n {
			fail(w, http.StatusBadGateway,
				fmt.Sprintf("partition %s answered %d results, expected %d", s.m.Partition(i).Name, len(batches[i].Results), n))
			return
		}
	}
	resp := server.BatchResponseJSON{Results: make([]server.VerdictJSON, n)}
	row := make([]server.VerdictJSON, len(batches))
	for q := 0; q < n; q++ {
		for i := range batches {
			row[i] = batches[i].Results[q]
		}
		resp.Results[q] = mergeWire(row)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEnrollStatus scatters the session lookup: sessions live on the
// partition owning the enrolled name, but the session id alone does not
// reveal the name, so ask everyone and relay the first partition that
// knows it (ordinal order for determinism). All-404 means unknown.
func (s *ScatterRouter) handleEnrollStatus(w http.ResponseWriter, r *http.Request) {
	results := s.fan(r.Context(), http.MethodGet, r.URL.RequestURI(), r.Header, nil)
	for i, p := range results {
		if p.err != nil || p.res.Status >= 500 {
			if obs.On() {
				cScatterRefused.Inc()
			}
			fail(w, http.StatusServiceUnavailable,
				fmt.Sprintf("partition %s unavailable", s.m.Partition(i).Name))
			return
		}
	}
	for _, p := range results {
		if p.res.Status == http.StatusOK {
			respond(w, p.res.Status, p.res.Header, p.res.Body)
			return
		}
	}
	respond(w, results[0].res.Status, results[0].res.Header, results[0].res.Body)
}

// ---- keyed mutations ----

// keyedFromBody routes a JSON mutation by the partition key in its body
// field (the device name). An absent key falls back to partition 0 —
// that only happens for characterize-without-registration, which touches
// no partition state.
func (s *ScatterRouter) keyedFromBody(field string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(body, &probe); err != nil {
			fail(w, http.StatusBadRequest, "decoding request: "+err.Error())
			return
		}
		name := ""
		if raw, ok := probe[field]; ok {
			if err := json.Unmarshal(raw, &name); err != nil {
				fail(w, http.StatusBadRequest, fmt.Sprintf("field %q must be a string", field))
				return
			}
		}
		s.forwardKeyed(w, r, name, r.Method, r.URL.RequestURI(), body)
	}
}

// handleRemove routes DELETE /v1/db?name=N by its query-string key.
func (s *ScatterRouter) handleRemove(w http.ResponseWriter, r *http.Request) {
	s.forwardKeyed(w, r, r.URL.Query().Get("name"), r.Method, r.URL.RequestURI(), nil)
}

// forwardKeyed sends one mutation to the owning partition's primary.
func (s *ScatterRouter) forwardKeyed(w http.ResponseWriter, r *http.Request, name, method, uri string, body []byte) {
	p := 0
	if name != "" {
		p = s.m.Owner(name)
	}
	if obs.On() {
		cScatterKeyed.Inc()
		obs.SpanFrom(r.Context()).SetAttr("partition", s.m.Partition(p).Name)
	}
	res, err := s.routers[p].Forward(r.Context(), method, uri, r.Header, body, true)
	if err != nil {
		status := http.StatusServiceUnavailable
		fail(w, status, fmt.Sprintf("partition %s: %s", s.m.Partition(p).Name, err.Error()))
		return
	}
	respond(w, res.Status, res.Header, res.Body)
}

// ---- cluster-wide control and introspection ----

// snapshotResultJSON is one partition's leg of POST /v1/snapshot.
type snapshotResultJSON struct {
	Partition string          `json:"partition"`
	Status    int             `json:"status"`
	Body      json.RawMessage `json:"body,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// handleSnapshot checkpoints every partition's primary. Legs are
// mutations (each goes to its partition's primary) issued sequentially —
// checkpoints are heavyweight and an operator-triggered action, so
// predictable ordering beats latency here.
func (s *ScatterRouter) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	out := make([]snapshotResultJSON, len(s.routers))
	code := http.StatusOK
	for i := range s.routers {
		out[i].Partition = s.m.Partition(i).Name
		res, err := s.routers[i].Forward(r.Context(), http.MethodPost, "/v1/snapshot", r.Header, nil, true)
		if err != nil {
			out[i].Error = err.Error()
			code = http.StatusServiceUnavailable
			continue
		}
		out[i].Status = res.Status
		out[i].Body = json.RawMessage(res.Body)
		if res.Status != http.StatusOK {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, out)
}

// clusterStatsJSON is the scatter router's GET /v1/db body: the summed
// entry count plus each partition's own stats verbatim.
type clusterStatsJSON struct {
	Entries    int                  `json:"entries"`
	Partitions []partitionStatsJSON `json:"partitions"`
}

type partitionStatsJSON struct {
	Name    string          `json:"name"`
	Entries int             `json:"entries"`
	Stats   json.RawMessage `json:"stats,omitempty"`
	Error   string          `json:"error,omitempty"`
}

func (s *ScatterRouter) handleStats(w http.ResponseWriter, r *http.Request) {
	results := s.fan(r.Context(), http.MethodGet, "/v1/db", r.Header, nil)
	resp := clusterStatsJSON{Partitions: make([]partitionStatsJSON, len(results))}
	code := http.StatusOK
	for i, p := range results {
		resp.Partitions[i].Name = s.m.Partition(i).Name
		if p.err != nil || p.res.Status != http.StatusOK {
			resp.Partitions[i].Error = "unavailable"
			code = http.StatusServiceUnavailable
			continue
		}
		var st struct {
			Entries int `json:"entries"`
		}
		if json.Unmarshal(p.res.Body, &st) == nil {
			resp.Partitions[i].Entries = st.Entries
			resp.Entries += st.Entries
		}
		resp.Partitions[i].Stats = json.RawMessage(p.res.Body)
	}
	writeJSON(w, code, resp)
}

// topologyJSON is the GET /v1/cluster/topology body — the one place the
// whole cluster shape is visible: the partition map (names, ordinals, id
// namespaces, key-hash contract) and each partition router's live view
// of its backends (role, health, applied sequence, breaker state).
type topologyJSON struct {
	KeyHash    string                  `json:"key_hash"`
	VNodes     int                     `json:"vnodes_per_partition"`
	Partitions []partitionTopologyJSON `json:"partitions"`
}

type partitionTopologyJSON struct {
	Name     string          `json:"name"`
	Ordinal  int             `json:"ordinal"`
	IDBase   int             `json:"id_base"`
	IDStride int             `json:"id_stride"`
	Primary  string          `json:"primary,omitempty"`
	Backends []BackendStatus `json:"backends"`
}

func (s *ScatterRouter) handleTopology(w http.ResponseWriter, r *http.Request) {
	resp := topologyJSON{
		KeyHash:    "mix64(fnv1a-64(name))",
		VNodes:     vnodesPerPartition,
		Partitions: make([]partitionTopologyJSON, len(s.routers)),
	}
	for i, pr := range s.routers {
		ns := s.m.Namespace(i)
		resp.Partitions[i] = partitionTopologyJSON{
			Name:     s.m.Partition(i).Name,
			Ordinal:  i,
			IDBase:   ns.Base,
			IDStride: ns.Stride,
			Primary:  pr.Primary(),
			Backends: pr.Status(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ScatterRouter) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleReadyz reports whether every partition is servable: at least one
// healthy, ready backend per partition. Identify fans to all partitions
// and refuses partial results, so one unservable partition makes the
// whole coordinator unready.
func (s *ScatterRouter) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type partReady struct {
		Name  string `json:"name"`
		Ready bool   `json:"ready"`
	}
	body := struct {
		Ready      bool        `json:"ready"`
		Partitions []partReady `json:"partitions"`
	}{Ready: true}
	for i, pr := range s.routers {
		ok := false
		for _, b := range pr.Status() {
			if b.Healthy && b.Ready {
				ok = true
				break
			}
		}
		body.Ready = body.Ready && ok
		body.Partitions = append(body.Partitions, partReady{Name: s.m.Partition(i).Name, Ready: ok})
	}
	code := http.StatusOK
	if !body.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
