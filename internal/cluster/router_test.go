package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/obs"
	"probablecause/internal/retry"
)

// identifyHTTP posts one identify query through url, returning the HTTP
// status and decoded verdict name.
func identifyHTTP(t *testing.T, client *http.Client, url string, es *bitset.Set) (int, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"len": es.Len(), "positions": es.Positions()})
	resp, err := client.Post(url+"/v1/identify", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	var v struct {
		Match bool   `json:"match"`
		Name  string `json:"name"`
	}
	if resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&v)
	}
	return resp.StatusCode, v.Name
}

// startRouter builds a router over the given nodes and serves it.
func startRouter(t *testing.T, cfg RouterConfig, nodes ...*testNode) (*Router, string, func()) {
	t.Helper()
	for _, n := range nodes {
		cfg.Backends = append(cfg.Backends, n.url())
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: r.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return r, "http://" + ln.Addr().String(), func() {
		srv.Close()
		r.Close()
	}
}

func TestRouterRoutesAndSpreadsReads(t *testing.T) {
	primary := startPrimary(t, 1)
	defer primary.close()
	f1 := startFollower(t, "f1", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f1.close()
	f2 := startFollower(t, "f2", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f2.close()

	router, rurl, stop := startRouter(t, RouterConfig{
		ProbeInterval:  10 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}, primary, f1, f2)
	defer stop()

	waitFor(t, 5*time.Second, "router sees primary", func() bool {
		return router.Primary() == primary.url()
	})

	// Mutations route to the primary, whichever backend order.
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 3; i++ {
		enrollDevice(t, client, rurl, i)
	}
	want := primary.svc.AppliedSeq()
	for _, f := range []*testNode{f1, f2} {
		waitFor(t, 5*time.Second, f.id+" catch-up", func() bool { return f.svc.AppliedSeq() >= want })
	}

	// Reads succeed through the router and spread beyond one backend.
	for i := 0; i < 30; i++ {
		code, name := identifyHTTP(t, client, rurl, deviceObs(obsBits, i%3, 9))
		if code != http.StatusOK || name != fmt.Sprintf("dev-%d", i%3) {
			t.Fatalf("identify %d via router: code %d name %q", i, code, name)
		}
	}
}

func TestRouterSurvivesFollowerChurn(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	primary := startPrimary(t, 1)
	defer primary.close()
	f1 := startFollower(t, "f1", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f1.close()
	f2 := startFollower(t, "f2", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f2.close()

	budget := retry.NewBudget(0.5, 50)
	router, rurl, stop := startRouter(t, RouterConfig{
		ProbeInterval:  10 * time.Millisecond,
		RequestTimeout: time.Second,
		Budget:         budget,
		Retry:          retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}, primary, f1, f2)
	defer stop()
	waitFor(t, 5*time.Second, "router sees primary", func() bool { return router.Primary() == primary.url() })

	client := &http.Client{Timeout: 5 * time.Second}
	enrollDevice(t, client, rurl, 0)
	waitFor(t, 5*time.Second, "followers caught up", func() bool {
		return f1.svc.AppliedSeq() >= primary.svc.AppliedSeq() && f2.svc.AppliedSeq() >= primary.svc.AppliedSeq()
	})

	req0 := obs.C("cluster.router.requests").Value()
	err0 := obs.C("cluster.router.errors").Value()

	// Kill f1 mid-read-traffic, then bring it back on the same address
	// (the router's backend list is static).
	addr := f1.srv.Listener.Addr().String()
	query := deviceObs(obsBits, 0, 9)
	failures := 0
	total := 200
	for i := 0; i < total; i++ {
		switch i {
		case 50:
			f1.kill()
		case 120:
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatalf("rebinding follower addr: %v", err)
			}
			go http.Serve(ln, f1.node.Handler())
			defer ln.Close()
		}
		code, _ := identifyHTTP(t, client, rurl, query)
		if code != http.StatusOK {
			failures++
		}
		time.Sleep(time.Millisecond)
	}

	// The router's RED metrics bound the client-visible error rate: the
	// probe loop plus hedged retries keep nearly all reads off the dead
	// backend. Allow a short detection window's worth of failures.
	reqs := obs.C("cluster.router.requests").Value() - req0
	errs := obs.C("cluster.router.errors").Value() - err0
	if reqs < int64(total) {
		t.Fatalf("router RED counted %d requests, want ≥ %d", reqs, total)
	}
	if maxErrs := int64(total / 10); errs > maxErrs {
		t.Fatalf("router RED errors %d exceed %d (failures seen by client: %d)", errs, maxErrs, failures)
	}
	if failures > total/10 {
		t.Fatalf("client saw %d/%d failures during follower churn", failures, total)
	}
	if _, denied := budget.Counts(); denied > 0 && failures > total/10 {
		t.Fatalf("retry budget denied %d retries and failures breached the bound", denied)
	}
}
