package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/server"
	"probablecause/internal/wal"
)

// fastAcc keeps enrollment streams short: converge after 2 unchanged
// observations with at least 3 total.
var fastAcc = fingerprint.AccumulatorConfig{MinObservations: 3, StablePatience: 2}

// testNode is one in-process cluster node: a durable service, its
// replication wrapper, and a real HTTP listener.
type testNode struct {
	t    *testing.T
	id   string
	dir  string
	svc  *server.Service
	node *Node
	srv  *httptest.Server
}

func (n *testNode) url() string { return n.srv.URL }

// kill simulates a crash: in-flight and future connections die; the
// service object is abandoned without checkpoint or graceful close.
func (n *testNode) kill() {
	n.srv.CloseClientConnections()
	n.srv.Close()
}

func (n *testNode) close() {
	n.srv.Close()
	n.node.Close()
	n.svc.Close()
}

// nodeOptions tweak startNode.
type nodeOptions struct {
	minISR   int
	pull     PullConfig
	walStart uint64 // WAL StartSeq for bootstrapped followers
	// cfg, when non-nil, adjusts the server config before boot (partition
	// scoping, plain shards, worker counts).
	cfg func(*server.Config)
}

func startNode(t *testing.T, id, dir string, opts nodeOptions) *testNode {
	t.Helper()
	scfg := server.Config{}
	if opts.cfg != nil {
		opts.cfg(&scfg)
	}
	svc, err := server.BootDurable(nil, scfg, server.EnrollConfig{
		Dir:         dir,
		Accumulator: fastAcc,
		// Tiny segments so checkpoints actually drop whole segment files.
		WAL: wal.Options{StartSeq: opts.walStart, SegmentBytes: 512},
	})
	if err != nil {
		t.Fatalf("boot %s: %v", id, err)
	}
	node := NewNode(svc, NodeConfig{ID: id, MinISR: opts.minISR, Pull: opts.pull})
	srv := httptest.NewServer(node.Handler())
	return &testNode{t: t, id: id, dir: dir, svc: svc, node: node, srv: srv}
}

// startPrimary boots a primary node with the given ack quorum.
func startPrimary(t *testing.T, minISR int) *testNode {
	t.Helper()
	n := startNode(t, "primary", t.TempDir(), nodeOptions{minISR: minISR})
	n.node.StartPrimary()
	return n
}

// startFollower boots a follower from scratch (empty dir, WAL from 1)
// pulling primary.
func startFollower(t *testing.T, id string, primary *testNode, pull PullConfig) *testNode {
	t.Helper()
	n := startNode(t, id, t.TempDir(), nodeOptions{pull: pull})
	if err := n.node.StartFollower(primary.url()); err != nil {
		t.Fatalf("start follower %s: %v", id, err)
	}
	return n
}

// enrollHTTP posts one observation through url's enroll endpoint and
// returns the decoded state plus HTTP status.
func enrollHTTP(t *testing.T, client *http.Client, url, session, name string, es *bitset.Set) (server.EnrollState, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"session": session, "name": name, "len": es.Len(), "positions": es.Positions(),
	})
	resp, err := client.Post(url+"/v1/enroll", "application/json", bytes.NewReader(body))
	if err != nil {
		return server.EnrollState{}, 0
	}
	defer resp.Body.Close()
	var st server.EnrollState
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding enroll ack: %v", err)
		}
	}
	return st, resp.StatusCode
}

// deviceObs is trial's observation for synthetic device i: a stable
// core plus one per-trial noise cell, so the intersection converges
// onto the core after the second observation.
func deviceObs(n, i, trial int) *bitset.Set {
	es := bitset.New(n)
	for j := 0; j < 6; j++ {
		es.Set(10*i + j)
	}
	es.Set(1000 + (i*31+trial*7)%(n-1000-1))
	return es
}

const obsBits = 4096

// enrollDevice runs device i's enrollment session to convergence
// through url, returning the acked states.
func enrollDevice(t *testing.T, client *http.Client, url string, i int) []server.EnrollState {
	t.Helper()
	var states []server.EnrollState
	for trial := 0; trial < 4; trial++ {
		st, code := enrollHTTP(t, client, url, fmt.Sprintf("sess-%d", i), fmt.Sprintf("dev-%d", i), deviceObs(obsBits, i, trial))
		if code != http.StatusOK {
			t.Fatalf("enroll dev-%d trial %d: status %d", i, trial, code)
		}
		states = append(states, st)
	}
	return states
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func dbBytes(t *testing.T, db *fingerprint.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// exportBytes snapshots a service's database encoding.
func exportBytes(t *testing.T, svc *server.Service) []byte {
	t.Helper()
	db, _, _, err := svc.ReplicationSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return dbBytes(t, db)
}

func TestReplicationFollowersConverge(t *testing.T) {
	primary := startPrimary(t, 1)
	defer primary.close()
	f1 := startFollower(t, "f1", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f1.close()
	f2 := startFollower(t, "f2", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f2.close()

	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 5; i++ {
		states := enrollDevice(t, client, primary.url(), i)
		last := states[len(states)-1]
		if !last.Promoted {
			t.Fatalf("dev-%d not promoted after %d observations", i, len(states))
		}
	}

	want := primary.svc.AppliedSeq()
	for _, f := range []*testNode{f1, f2} {
		waitFor(t, 5*time.Second, f.id+" catch-up", func() bool {
			return f.svc.AppliedSeq() >= want
		})
	}
	pdb := exportBytes(t, primary.svc)
	for _, f := range []*testNode{f1, f2} {
		if fdb := exportBytes(t, f.svc); !bytes.Equal(pdb, fdb) {
			t.Fatalf("%s database diverged from primary (%d vs %d bytes)", f.id, len(fdb), len(pdb))
		}
	}

	// Followers serve identify reads with the primary's verdicts.
	for i := 0; i < 5; i++ {
		es := deviceObs(obsBits, i, 9)
		v := f1.svc.DB().Decide(es)
		if !v.OK() || v.Name != fmt.Sprintf("dev-%d", i) {
			t.Fatalf("follower verdict for dev-%d: %+v", i, v)
		}
	}
}

func TestFollowerRefusesMutationsAndReportsReady(t *testing.T) {
	primary := startPrimary(t, 0)
	defer primary.close()
	f := startFollower(t, "f1", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f.close()

	client := &http.Client{Timeout: 2 * time.Second}
	waitFor(t, 5*time.Second, "follower ready", func() bool { return f.svc.Ready() })

	_, code := enrollHTTP(t, client, f.url(), "s", "dev", deviceObs(obsBits, 0, 0))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("follower accepted enroll with status %d, want 503", code)
	}

	resp, err := client.Get(f.url() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Ready bool   `json:"ready"`
		Role  string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ready.Ready || ready.Role != "follower" {
		t.Fatalf("follower readyz = %d %+v", resp.StatusCode, ready)
	}
}

func TestSnapshotBootstrapAfterCompaction(t *testing.T) {
	primary := startPrimary(t, 0)
	defer primary.close()
	client := &http.Client{Timeout: 5 * time.Second}

	// Enroll devices to convergence, checkpoint (compacting the WAL), and
	// enroll more so the stream has both pre- and post-snapshot records.
	for i := 0; i < 3; i++ {
		enrollDevice(t, client, primary.url(), i)
	}
	if _, err := primary.svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		enrollDevice(t, client, primary.url(), i)
	}

	// A from-scratch follower cannot pull seq 1 anymore.
	if first := primary.svc.WAL().FirstSeq(); first <= 1 {
		t.Fatalf("checkpoint did not compact the WAL (first seq %d)", first)
	}

	// Bootstrap a follower from the snapshot endpoint.
	dir := t.TempDir()
	meta, err := BootstrapFollower(context.Background(), dir, primary.url(), client)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Floor == 0 || meta.Watermark < meta.Floor {
		t.Fatalf("bootstrap meta %+v", meta)
	}
	f := startNode(t, "boot", dir, nodeOptions{walStart: meta.Floor, pull: PullConfig{Interval: 5 * time.Millisecond}})
	defer f.close()
	if err := f.node.StartFollower(primary.url()); err != nil {
		t.Fatal(err)
	}

	want := primary.svc.AppliedSeq()
	waitFor(t, 5*time.Second, "bootstrapped follower catch-up", func() bool {
		return f.svc.AppliedSeq() >= want && f.svc.Ready()
	})
	if pdb, fdb := exportBytes(t, primary.svc), exportBytes(t, f.svc); !bytes.Equal(pdb, fdb) {
		t.Fatalf("bootstrapped follower diverged (%d vs %d bytes)", len(fdb), len(pdb))
	}
}

func TestCommitGateBlocksWithoutFollowers(t *testing.T) {
	// MinISR=1 with no followers: the enroll ack must gate until a
	// follower acks, so a lone primary times out rather than lying about
	// replication.
	primary := startPrimary(t, 1)
	defer primary.close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := primary.svc.Enroll(ctx, "s", "dev", deviceObs(obsBits, 0, 0))
	if err == nil {
		t.Fatal("enroll acked with no follower at MinISR=1")
	}

	// A follower joining releases subsequent enrolls.
	f := startFollower(t, "f1", primary, PullConfig{Interval: 5 * time.Millisecond})
	defer f.close()
	st, code := enrollHTTP(t, &http.Client{Timeout: 5 * time.Second}, primary.url(), "s2", "dev2", deviceObs(obsBits, 1, 0))
	if code != http.StatusOK {
		t.Fatalf("enroll with follower: status %d", code)
	}
	if f.svc.AppliedSeq() < st.Seq {
		t.Fatalf("gate released at seq %d before follower applied (follower at %d)", st.Seq, f.svc.AppliedSeq())
	}
}
