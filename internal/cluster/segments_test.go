package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"probablecause/internal/server"
	"probablecause/internal/store"
	"probablecause/internal/wal"
)

// startTieredNode boots a node whose service runs the tiered segment store
// (tiny flush threshold so enrollment actually lays down segment files).
func startTieredNode(t *testing.T, id, dir string, opts nodeOptions) *testNode {
	t.Helper()
	svc, err := server.BootDurable(nil, server.Config{
		Store: store.Config{
			Backend:         store.BackendTiered,
			Dir:             filepath.Join(dir, "store"),
			FlushEntries:    4,
			CompactSegments: 4,
		},
	}, server.EnrollConfig{
		Dir:         dir,
		Accumulator: fastAcc,
		WAL:         wal.Options{StartSeq: opts.walStart, SegmentBytes: 512},
	})
	if err != nil {
		t.Fatalf("boot tiered %s: %v", id, err)
	}
	node := NewNode(svc, NodeConfig{ID: id, MinISR: opts.minISR, Pull: opts.pull})
	srv := httptest.NewServer(node.Handler())
	return &testNode{t: t, id: id, dir: dir, svc: svc, node: node, srv: srv}
}

// TestSegmentBootstrapTieredFollower proves the segment-shipping bootstrap
// path end to end: a tiered primary flushes its corpus into committed
// segment files, a fresh follower downloads them (plus the manifest, last)
// through /v1/repl/segments, verifies them, recovers the watermark from the
// manifest, and then catches up over the normal WAL pull — landing on the
// primary's exact database bytes without ever transferring a monolithic
// export.
func TestSegmentBootstrapTieredFollower(t *testing.T) {
	primary := startTieredNode(t, "primary", t.TempDir(), nodeOptions{})
	primary.node.StartPrimary()
	defer primary.close()
	client := &http.Client{Timeout: 5 * time.Second}

	// Converge several devices, checkpoint (flush to segments + compact the
	// WAL), then converge more so bootstrap spans flushed and live state.
	for i := 0; i < 4; i++ {
		enrollDevice(t, client, primary.url(), i)
	}
	if _, err := primary.svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		enrollDevice(t, client, primary.url(), i)
	}

	fdir := t.TempDir()
	meta, err := BootstrapFollowerSegments(context.Background(), filepath.Join(fdir, "store"), primary.url(), client)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Watermark == 0 || meta.Floor == 0 || meta.Watermark < meta.Floor {
		t.Fatalf("bootstrap meta %+v", meta)
	}

	f := startTieredNode(t, "boot", fdir, nodeOptions{walStart: meta.Floor, pull: PullConfig{Interval: 5 * time.Millisecond}})
	defer f.close()
	if err := f.node.StartFollower(primary.url()); err != nil {
		t.Fatal(err)
	}
	want := primary.svc.AppliedSeq()
	waitFor(t, 5*time.Second, "segment-bootstrapped follower catch-up", func() bool {
		return f.svc.AppliedSeq() >= want && f.svc.Ready()
	})
	if pdb, fdb := exportBytes(t, primary.svc), exportBytes(t, f.svc); !bytes.Equal(pdb, fdb) {
		t.Fatalf("segment-bootstrapped follower diverged (%d vs %d bytes)", len(fdb), len(pdb))
	}
	// The follower is genuinely tiered: the shipped segments are its base,
	// not a replayed in-memory copy.
	if sc, ok := f.svc.DB().(interface{ SegmentCount() int }); !ok || sc.SegmentCount() == 0 {
		t.Fatal("follower is not serving from shipped segments")
	}

	// Replication keeps flowing on top of the shipped base.
	enrollDevice(t, client, primary.url(), 6)
	want = primary.svc.AppliedSeq()
	waitFor(t, 5*time.Second, "post-bootstrap replication", func() bool {
		return f.svc.AppliedSeq() >= want
	})
	if pdb, fdb := exportBytes(t, primary.svc), exportBytes(t, f.svc); !bytes.Equal(pdb, fdb) {
		t.Fatal("follower diverged after post-bootstrap enrollment")
	}
}

// TestSegmentBootstrapRefusedByMemoryPrimary: a memory-backend primary has
// no segments to ship; the endpoint must say so rather than stream garbage.
func TestSegmentBootstrapRefusedByMemoryPrimary(t *testing.T) {
	primary := startPrimary(t, 0)
	defer primary.close()
	client := &http.Client{Timeout: 5 * time.Second}
	_, err := BootstrapFollowerSegments(context.Background(), t.TempDir(), primary.url(), client)
	if err == nil {
		t.Fatal("segment bootstrap from a memory-backend primary succeeded")
	}
}
