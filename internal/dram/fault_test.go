package dram

import (
	"errors"
	"fmt"
	"testing"
)

var errGlitch = errors.New("bus glitch")

func TestReadFaultHookFailsThenRecovers(t *testing.T) {
	chip, err := NewChip(KM41464A(0xFA017))
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Write(0, []byte{0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	chip.SetFaultHook(func(op string, addr, n int) error {
		calls++
		if op != "read" {
			t.Fatalf("unexpected op %q", op)
		}
		if calls == 1 {
			return errGlitch
		}
		return nil
	})
	if _, err := chip.Read(0, 2); !errors.Is(err, errGlitch) {
		t.Fatalf("first read: got %v, want the hook's error", err)
	}
	// The failed read moved no data and no time: the retry is exact.
	got, err := chip.Read(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB || got[1] != 0xCD {
		t.Fatalf("retried read returned %x", got)
	}
	chip.SetFaultHook(nil)
	if _, err := chip.Read(0, 2); err != nil {
		t.Fatalf("cleared hook still fires: %v", err)
	}
}

func TestDefaultFaultHookInheritedAtConstruction(t *testing.T) {
	SetDefaultFaultHook(func(op string, addr, n int) error {
		return fmt.Errorf("default hook")
	})
	defer SetDefaultFaultHook(nil)
	faulty, err := NewChip(KM41464A(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Read(0, 1); err == nil {
		t.Fatal("chip did not inherit the default hook")
	}
	SetDefaultFaultHook(nil)
	clean, err := NewChip(KM41464A(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Read(0, 1); err != nil {
		t.Fatalf("chip built after clearing still faults: %v", err)
	}
	// Clearing the default never reaches back into existing chips.
	if _, err := faulty.Read(0, 1); err == nil {
		t.Fatal("existing chip lost its hook when the default was cleared")
	}
}
