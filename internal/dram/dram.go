// Package dram implements a cell-level simulator of DRAM charge decay — the
// stand-in for the paper's hardware platform (a KM41464A DRAM driven by an
// MSP430 with automatic refresh disabled, inside a thermal chamber; §6).
//
// # Physical model
//
// Each cell stores a logical value. Every cell has a default value — the
// value it reads as when its storage capacitor is fully discharged. All cells
// in a row share a default value, and the default alternates every few rows
// (§2, Figure 2). Writing the opposite of the default charges the capacitor;
// the capacitor then leaks, and once its voltage falls below the detection
// threshold the cell reads as its default value again.
//
// Cell i's retention time is
//
//	τᵢ(T) = Q(Φ(√w·zmask(i) + √(1−w)·zchip(i))) · scale(T) · (1 + εᵢ)
//
// where Q is the quantile function of the configured retention distribution
// (Gaussian for the paper's main platform, skewed for DDR2, §8.1), zmask is a
// mask-dependent standard normal shared by chips from the same fabrication
// mask (capacitance variation), zchip is a per-chip standard normal (leakage
// variation through random dopant fluctuation — the dominant term, so w is
// small), scale(T) halves retention per +10 °C, and εᵢ is a small zero-mean
// per-charge-epoch noise redrawn whenever the cell is recharged. The noise
// term produces the ~2 % trial-to-trial variation the paper measures (§7.2);
// everything else is locked in at "manufacturing" (construction) time.
//
// # Timing model
//
// The chip carries a clock advanced with Elapse. Writes and refreshes charge
// cells at the current instant; reads evaluate decay lazily: a charged cell
// has decayed iff now − chargeTime exceeds its effective retention. Because
// effective retention is fixed within a charge epoch, the decayed predicate
// is monotone in time and lazy evaluation is exact.
package dram

import (
	"fmt"
	"math"
	"sync"

	"probablecause/internal/bitset"
	"probablecause/internal/dist"
	"probablecause/internal/obs"
	"probablecause/internal/prng"
)

// Simulator metrics. Decay counts are accumulated locally in the hot
// per-bit loops and published once per operation, so the instrumented path
// adds one branch and at most one atomic add per Read/Refresh call.
var (
	cReads          = obs.C("dram.reads")
	cReadBits       = obs.C("dram.read.bits")
	cWrites         = obs.C("dram.writes")
	cCellsDecayed   = obs.C("dram.cells_decayed")
	cRefreshRows    = obs.C("dram.refresh.rows")
	cRefreshWindows = obs.C("dram.refresh.windows")
	cRefreshLost    = obs.C("dram.refresh.cells_lost")
	cReadFaults     = obs.C("dram.read.faults")
)

// FaultHook models transient device faults: it is consulted at the top of
// every Read and may fail the operation by returning an error (op is
// "read", addr/n the requested range). The simulator's own physics never
// fail a read — decay corrupts data, not transfers — but real capture rigs
// do fail transiently (bus glitches, busy controllers), and the chaos
// suite injects exactly that through internal/faults. Hook errors should
// be transient-classified so retry policies recognize them.
type FaultHook func(op string, addr, n int) error

var defaultFaultHook struct {
	mu   sync.Mutex
	hook FaultHook
}

// SetDefaultFaultHook installs a fault hook inherited by every chip
// created afterwards — the lever a binary uses to inject DRAM faults into
// experiments that construct their own chips internally. A nil hook clears
// it. Existing chips are unaffected.
func SetDefaultFaultHook(h FaultHook) {
	defaultFaultHook.mu.Lock()
	defaultFaultHook.hook = h
	defaultFaultHook.mu.Unlock()
}

func currentDefaultFaultHook() FaultHook {
	defaultFaultHook.mu.Lock()
	defer defaultFaultHook.mu.Unlock()
	return defaultFaultHook.hook
}

// PageBytes is the smallest unit of contiguous memory the analysis manages,
// matching the operating-system page the paper fingerprints (§4, fn. 1).
const PageBytes = 4096

// PageBits is the number of bits per page (M in Table 1).
const PageBits = PageBytes * 8

// Geometry describes the physical arrangement of a chip.
type Geometry struct {
	Rows        int // number of rows (refresh granularity)
	Cols        int // words per row
	BitsPerWord int // bits per word (KM41464A stores 4-bit words)
	// DefaultStripe is the number of consecutive rows sharing a default
	// value before it flips ("the default value alternates every few rows").
	DefaultStripe int
}

// Bits returns the total number of cells.
func (g Geometry) Bits() int { return g.Rows * g.Cols * g.BitsPerWord }

// Bytes returns the chip capacity in bytes.
func (g Geometry) Bytes() int { return g.Bits() / 8 }

// Pages returns the number of whole OS pages the chip holds.
func (g Geometry) Pages() int { return g.Bytes() / PageBytes }

// RowBits returns the number of cells in one row.
func (g Geometry) RowBits() int { return g.Cols * g.BitsPerWord }

func (g Geometry) validate() error {
	if g.Rows <= 0 || g.Cols <= 0 || g.BitsPerWord <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", g)
	}
	if g.DefaultStripe <= 0 {
		return fmt.Errorf("dram: non-positive default stripe %d", g.DefaultStripe)
	}
	if g.Bits()%8 != 0 {
		return fmt.Errorf("dram: capacity %d bits is not byte aligned", g.Bits())
	}
	return nil
}

// Config parameterizes a simulated chip.
type Config struct {
	Geometry  Geometry
	Retention dist.Distribution // retention distribution at RefTempC
	RefTempC  float64           // temperature the distribution is specified at
	// NoiseSigma is the standard deviation of the multiplicative per-epoch
	// retention noise ε. The default reproduces the ≥98 % repeatability of
	// §7.2.
	NoiseSigma float64
	// VRTFraction is the fraction of cells exhibiting variable retention
	// time (random telegraph noise): on every recharge such a cell picks
	// between its base retention and VRTFactor times it. VRT cells are the
	// physical source of the rare order-of-failure exceptions in §7.4 (a
	// cell failing at 99 % accuracy but holding at 95 %).
	VRTFraction float64
	// VRTFactor is the high-state retention multiplier of VRT cells.
	VRTFactor float64
	// NominalVolts and MinVolts bound the supply-voltage knob (§2 cites
	// voltage scaling as the other approximation mechanism besides refresh
	// rate). At NominalVolts retention is unscaled; as the supply drops
	// toward MinVolts the storage capacitor holds quadratically less usable
	// charge and retention shrinks accordingly.
	NominalVolts float64
	MinVolts     float64
	// MaskWeight w ∈ [0,1) is the fraction of retention variance shared
	// across chips built from the same mask. The paper expects leakage (the
	// chip-unique term) to dominate, so this is small.
	MaskWeight float64
	MaskSeed   uint64 // seed of the mask-shared variation
	ChipSeed   uint64 // seed of the chip-unique variation (the identity!)
}

// KM41464A returns the configuration of the paper's primary platform: a
// Samsung KM41464A 32 KB DRAM organized as 64K 4-bit words in 256 rows ×
// 256 columns (§6), with a Gaussian retention distribution.
func KM41464A(chipSeed uint64) Config {
	return Config{
		Geometry:     Geometry{Rows: 256, Cols: 256, BitsPerWord: 4, DefaultStripe: 2},
		Retention:    dist.NewNormal(10, 2), // seconds at 40 °C
		RefTempC:     40,
		NoiseSigma:   0.0005,
		VRTFraction:  0.004,
		VRTFactor:    2.5,
		NominalVolts: 5.0, // the KM41464A is a 5 V part
		MinVolts:     2.0,
		MaskWeight:   0.05,
		MaskSeed:     0xA11CE,
		ChipSeed:     chipSeed,
	}
}

// DDR2 returns the configuration of the replication platform (§8.1): a
// window of a Micron MT4HTF3264HY 256 MB DDR2 device. The volatility
// distribution is skewed toward higher volatility (shorter retention), which
// the paper reports as the only observable difference. The window covers 64
// pages rather than the whole device; all experiments operate on page-sized
// regions, so a window preserves behaviour at a tractable cost.
func DDR2(chipSeed uint64) Config {
	return Config{
		Geometry: Geometry{Rows: 2048, Cols: 1024, BitsPerWord: 1, DefaultStripe: 4},
		// Left-heavy split normal: skewed toward high volatility while the
		// 1 % quantile (where fingerprints live) stays comfortably positive.
		Retention:    dist.NewTwoPieceNormal(12, 3.5, 1.5),
		RefTempC:     40,
		NoiseSigma:   0.0005,
		VRTFraction:  0.004,
		VRTFactor:    2.5,
		NominalVolts: 1.8, // DDR2 supply
		MinVolts:     0.9,
		MaskWeight:   0.05,
		MaskSeed:     0xDD72,
		ChipSeed:     chipSeed,
	}
}

func (c Config) validate() error {
	if err := c.Geometry.validate(); err != nil {
		return err
	}
	if c.Retention == nil {
		return fmt.Errorf("dram: nil retention distribution")
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("dram: negative noise sigma %v", c.NoiseSigma)
	}
	if c.VRTFraction < 0 || c.VRTFraction > 1 {
		return fmt.Errorf("dram: VRT fraction %v outside [0,1]", c.VRTFraction)
	}
	if c.VRTFraction > 0 && c.VRTFactor < 1 {
		return fmt.Errorf("dram: VRT factor %v must be ≥ 1", c.VRTFactor)
	}
	if c.NominalVolts != 0 || c.MinVolts != 0 {
		if c.MinVolts <= 0 || c.NominalVolts <= c.MinVolts {
			return fmt.Errorf("dram: voltage range [%v, %v] invalid", c.MinVolts, c.NominalVolts)
		}
	}
	if c.MaskWeight < 0 || c.MaskWeight >= 1 {
		return fmt.Errorf("dram: mask weight %v outside [0,1)", c.MaskWeight)
	}
	return nil
}

// Chip is one simulated DRAM device.
type Chip struct {
	cfg       Config
	rng       *prng.Source
	tempC     float64
	tempScale float64 // retention multiplier at current temperature
	volts     float64
	voltScale float64 // retention multiplier at current supply voltage
	now       float64 // clock, seconds

	retention  []float32 // per-cell retention at reference temperature
	epochNoise []float32 // per-cell (1+ε) for the current charge epoch
	chargeTime []float64 // per-cell time of last charge (valid when charged)

	stored   *bitset.Set // logical value most recently written
	charged  *bitset.Set // capacitor currently charged (stored != default)
	defaults *bitset.Set // per-cell default value
	vrt      *bitset.Set // cells with variable retention time

	fault FaultHook // transient read-fault injection; nil = no faults
}

// NewChip builds a chip. The retention map is derived deterministically from
// the seeds, so the same Config always yields the same device identity.
func NewChip(cfg Config) (*Chip, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Geometry.Bits()
	c := &Chip{
		cfg:        cfg,
		rng:        prng.New(prng.Hash(cfg.ChipSeed, 0x0C1B)),
		retention:  make([]float32, n),
		epochNoise: make([]float32, n),
		chargeTime: make([]float64, n),
		stored:     bitset.New(n),
		charged:    bitset.New(n),
		defaults:   bitset.New(n),
		vrt:        bitset.New(n),
		fault:      currentDefaultFaultHook(),
	}
	c.SetTemperature(cfg.RefTempC)
	c.volts, c.voltScale = cfg.NominalVolts, 1

	// Default values: alternate every DefaultStripe rows.
	rowBits := cfg.Geometry.RowBits()
	for r := 0; r < cfg.Geometry.Rows; r++ {
		if (r/cfg.Geometry.DefaultStripe)%2 == 1 {
			for b := r * rowBits; b < (r+1)*rowBits; b++ {
				c.defaults.Set(b)
			}
		}
	}
	// stored starts equal to defaults (power-up, nothing charged).
	copyDefaults(c.stored, c.defaults)

	// Retention: correlated Gaussian copula over mask and chip components.
	w := cfg.MaskWeight
	sw, scw := math.Sqrt(w), math.Sqrt(1-w)
	for i := 0; i < n; i++ {
		zm := stdNormalFromHash(prng.Hash(cfg.MaskSeed, uint64(i), 0x3A5C))
		zc := stdNormalFromHash(prng.Hash(cfg.ChipSeed, uint64(i), 0xC41B))
		u := stdNormalCDF(sw*zm + scw*zc)
		// Clamp away from {0,1} so Quantile stays finite.
		u = math.Min(math.Max(u, 1e-12), 1-1e-12)
		tau := cfg.Retention.Quantile(u)
		if tau < 1e-4 {
			tau = 1e-4 // even the leakiest cell holds charge briefly
		}
		c.retention[i] = float32(tau)
		c.epochNoise[i] = 1
		// VRT membership is chip-specific and locked in at manufacturing,
		// like every other source of the fingerprint.
		if cfg.VRTFraction > 0 &&
			prng.Uniform01(prng.Hash(cfg.ChipSeed, uint64(i), 0x5247)) < cfg.VRTFraction {
			c.vrt.Set(i)
		}
	}
	return c, nil
}

// stdNormalFromHash maps a hash to a standard normal deviate.
func stdNormalFromHash(h uint64) float64 {
	u := prng.Uniform01(h)
	if u < 1e-12 {
		u = 1e-12
	}
	if u > 1-1e-12 {
		u = 1 - 1e-12
	}
	return dist.StdNormalQuantile(u)
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func copyDefaults(dst, src *bitset.Set) {
	dst.Reset()
	dst.Or(src)
}

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Geometry returns the chip's geometry.
func (c *Chip) Geometry() Geometry { return c.cfg.Geometry }

// Now returns the chip clock in seconds.
func (c *Chip) Now() float64 { return c.now }

// Temperature returns the current operating temperature in °C.
func (c *Chip) Temperature() float64 { return c.tempC }

// SetTemperature changes the operating temperature (the thermal chamber
// knob). Retention of every cell scales by 2^-((T−Tref)/10). The new scale
// applies to charge already in flight, so raising retention mid-epoch can
// resurrect a not-yet-read decayed cell; controllers rewrite or refresh
// after changing operating conditions, as the paper's platform does.
func (c *Chip) SetTemperature(tempC float64) {
	c.tempC = tempC
	c.tempScale = dist.RetentionScale(tempC, c.cfg.RefTempC)
}

// Volts returns the current supply voltage (NominalVolts if the config does
// not model voltage).
func (c *Chip) Volts() float64 { return c.volts }

// SetVolts changes the supply voltage (the voltage-scaling approximation
// knob). Retention scales with the square of the charge margin above the
// sensing minimum: at nominal voltage the scale is 1, approaching 0 at
// MinVolts. Returns an error outside (MinVolts, NominalVolts].
func (c *Chip) SetVolts(v float64) error {
	if c.cfg.NominalVolts == 0 {
		return fmt.Errorf("dram: chip does not model supply voltage")
	}
	if v <= c.cfg.MinVolts || v > c.cfg.NominalVolts {
		return fmt.Errorf("dram: voltage %v outside (%v, %v]", v, c.cfg.MinVolts, c.cfg.NominalVolts)
	}
	c.volts = v
	margin := (v - c.cfg.MinVolts) / (c.cfg.NominalVolts - c.cfg.MinVolts)
	c.voltScale = margin * margin
	return nil
}

// Elapse advances the chip clock by dt seconds. It panics on negative dt:
// the decay model is monotone in time.
func (c *Chip) Elapse(dt float64) {
	if dt < 0 {
		panic("dram: negative time step")
	}
	c.now += dt
}

// effectiveRetention returns cell i's retention for the current epoch at the
// current temperature.
func (c *Chip) effectiveRetention(i int) float64 {
	return float64(c.retention[i]) * c.tempScale * c.voltScale * float64(c.epochNoise[i])
}

// decayed reports whether charged cell i has lost its charge by time t.
func (c *Chip) decayed(i int, t float64) bool {
	return t-c.chargeTime[i] > c.effectiveRetention(i)
}

// charge puts cell i into the charged state at the current instant, drawing
// fresh epoch noise. VRT cells additionally flip a coin between their base
// and high retention state (random telegraph noise re-rolls per charge).
func (c *Chip) charge(i int) {
	c.charged.Set(i)
	c.chargeTime[i] = c.now
	noise := 1 + c.rng.Normal(0, c.cfg.NoiseSigma)
	if c.vrt.Get(i) && c.rng.Float64() < 0.5 {
		noise *= c.cfg.VRTFactor
	}
	c.epochNoise[i] = float32(noise)
}

// Write stores data starting at byte address addr. Cells written with their
// default value are discharged; cells written with the opposite value are
// charged now.
func (c *Chip) Write(addr int, data []byte) error {
	if err := c.checkRange(addr, len(data)); err != nil {
		return err
	}
	for bi, b := range data {
		base := (addr + bi) * 8
		for k := 0; k < 8; k++ {
			i := base + k
			v := b&(1<<uint(k)) != 0
			if v {
				c.stored.Set(i)
			} else {
				c.stored.Clear(i)
			}
			if v != c.defaults.Get(i) {
				c.charge(i)
			} else {
				c.charged.Clear(i)
			}
		}
	}
	if obs.On() {
		cWrites.Inc()
	}
	return nil
}

// SetFaultHook installs (or, with nil, clears) this chip's fault hook.
func (c *Chip) SetFaultHook(h FaultHook) { c.fault = h }

// Read returns n bytes starting at byte address addr, evaluating decay at
// the current clock. A charged cell that has outlived its retention reads as
// its default value — the approximate output. With a fault hook installed,
// the read may instead fail with the hook's (transient) error before any
// data moves.
func (c *Chip) Read(addr, n int) ([]byte, error) {
	if err := c.checkRange(addr, n); err != nil {
		return nil, err
	}
	if c.fault != nil {
		if err := c.fault("read", addr, n); err != nil {
			if obs.On() {
				cReadFaults.Inc()
			}
			return nil, fmt.Errorf("dram: read [%d,%d): %w", addr, addr+n, err)
		}
	}
	out := make([]byte, n)
	decayed := 0
	for bi := 0; bi < n; bi++ {
		base := (addr + bi) * 8
		var b byte
		for k := 0; k < 8; k++ {
			i := base + k
			v := c.stored.Get(i)
			if c.charged.Get(i) && c.decayed(i, c.now) {
				v = c.defaults.Get(i)
				decayed++
			}
			if v {
				b |= 1 << uint(k)
			}
		}
		out[bi] = b
	}
	if obs.On() {
		cReads.Inc()
		cReadBits.Add(int64(n) * 8)
		cCellsDecayed.Add(int64(decayed))
	}
	return out, nil
}

// RefreshRow performs a hardware refresh of row r: a read followed by a
// write-back (§2). Cells that have already decayed are written back at their
// default value — refresh cannot resurrect lost data — while surviving
// charged cells are topped up and start a new epoch.
func (c *Chip) RefreshRow(r int) error {
	if r < 0 || r >= c.cfg.Geometry.Rows {
		return fmt.Errorf("dram: row %d out of range [0,%d)", r, c.cfg.Geometry.Rows)
	}
	rowBits := c.cfg.Geometry.RowBits()
	lost := 0
	for i := r * rowBits; i < (r+1)*rowBits; i++ {
		if !c.charged.Get(i) {
			continue
		}
		if c.decayed(i, c.now) {
			// Value already reverted: persist the loss.
			lost++
			c.charged.Clear(i)
			if c.defaults.Get(i) {
				c.stored.Set(i)
			} else {
				c.stored.Clear(i)
			}
		} else {
			c.charge(i)
		}
	}
	if obs.On() {
		cRefreshRows.Inc()
		cRefreshLost.Add(int64(lost))
	}
	return nil
}

// RefreshAll refreshes every row — one simulated refresh window.
func (c *Chip) RefreshAll() {
	for r := 0; r < c.cfg.Geometry.Rows; r++ {
		if err := c.RefreshRow(r); err != nil {
			panic(err) // unreachable: r is always in range
		}
	}
	if obs.On() {
		cRefreshWindows.Inc()
	}
}

// WorstCaseData returns the data pattern that charges every cell — the
// complement of the default values (§6: "we load data that charges every
// memory cell"). The pattern gives every cell the possibility of losing
// state, the fingerprinting worst case.
func (c *Chip) WorstCaseData() []byte {
	inv := c.defaults.Clone()
	all := bitset.New(inv.Len())
	for i := 0; i < all.Len(); i++ {
		all.Set(i)
	}
	return all.Xor(inv).Bytes()
}

// DecayCountWithin returns how many currently-charged cells will have
// decayed dt seconds from now. The adaptive-refresh controller uses this the
// way real controllers use retention measurement sweeps: write a worst-case
// pattern once, then probe the decay curve.
func (c *Chip) DecayCountWithin(dt float64) int {
	t := c.now + dt
	count := 0
	c.charged.ForEach(func(i int) bool {
		if c.decayed(i, t) {
			count++
		}
		return true
	})
	return count
}

// RowDecayCountWithin returns how many currently-charged cells of row r
// will have decayed dt seconds from now. Retention-aware refresh schemes
// (RAIDR-style, §9.2) use this to profile per-row retention.
func (c *Chip) RowDecayCountWithin(r int, dt float64) (int, error) {
	if r < 0 || r >= c.cfg.Geometry.Rows {
		return 0, fmt.Errorf("dram: row %d out of range [0,%d)", r, c.cfg.Geometry.Rows)
	}
	t := c.now + dt
	rowBits := c.cfg.Geometry.RowBits()
	count := 0
	for i := r * rowBits; i < (r+1)*rowBits; i++ {
		if c.charged.Get(i) && c.decayed(i, t) {
			count++
		}
	}
	return count, nil
}

// ChargedCount returns the number of currently charged cells.
func (c *Chip) ChargedCount() int { return c.charged.Count() }

func (c *Chip) checkRange(addr, n int) error {
	if addr < 0 || n < 0 || addr+n > c.cfg.Geometry.Bytes() {
		return fmt.Errorf("dram: range [%d,%d) outside chip of %d bytes",
			addr, addr+n, c.cfg.Geometry.Bytes())
	}
	return nil
}
