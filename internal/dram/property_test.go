package dram

import (
	"testing"
	"testing/quick"

	"probablecause/internal/bitset"
)

// Property: refreshing twice in a row is the same as refreshing once — the
// second refresh sees every surviving cell freshly charged and every decayed
// cell already reverted.
func TestQuickRefreshIdempotent(t *testing.T) {
	f := func(seed uint64, dtRaw uint8) bool {
		cfg := tinyConfig(seed)
		cfg.NoiseSigma = 0 // idempotence is exact only without per-epoch noise
		cfg.VRTFraction = 0
		dt := float64(dtRaw%12) + 0.5

		run := func(doubleRefresh bool) []byte {
			c, err := NewChip(cfg)
			if err != nil {
				t.Fatal(err)
			}
			data := c.WorstCaseData()
			if err := c.Write(0, data); err != nil {
				t.Fatal(err)
			}
			c.Elapse(dt)
			c.RefreshAll()
			if doubleRefresh {
				c.RefreshAll()
			}
			c.Elapse(dt)
			got, err := c.Read(0, len(data))
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		a, b := run(false), run(true)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: errors accumulated over two intervals with a refresh in between
// are a subset of errors over the same total time without refresh (refresh
// can only help), and a superset of a single interval's errors.
func TestQuickRefreshHelps(t *testing.T) {
	f := func(seed uint64, dtRaw uint8) bool {
		cfg := tinyConfig(seed ^ 0xBEE)
		cfg.NoiseSigma = 0
		cfg.VRTFraction = 0
		dt := float64(dtRaw%10) + 1

		errorsOf := func(refreshBetween bool) *bitset.Set {
			c, err := NewChip(cfg)
			if err != nil {
				t.Fatal(err)
			}
			data := c.WorstCaseData()
			if err := c.Write(0, data); err != nil {
				t.Fatal(err)
			}
			c.Elapse(dt)
			if refreshBetween {
				c.RefreshAll()
			}
			c.Elapse(dt)
			got, err := c.Read(0, len(data))
			if err != nil {
				t.Fatal(err)
			}
			return bitset.FromBytes(got).Xor(bitset.FromBytes(data))
		}
		with := errorsOf(true)
		without := errorsOf(false)
		return with.IsSubset(without)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: error count grows monotonically with temperature at a fixed
// interval (noise-free).
func TestQuickTemperatureMonotone(t *testing.T) {
	f := func(seed uint64, t1Raw, t2Raw uint8) bool {
		cfg := tinyConfig(seed ^ 0x7E39)
		cfg.NoiseSigma = 0
		cfg.VRTFraction = 0
		t1 := 20 + float64(t1Raw%60)
		t2 := 20 + float64(t2Raw%60)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		count := func(temp float64) int {
			c, err := NewChip(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.SetTemperature(temp)
			data := c.WorstCaseData()
			if err := c.Write(0, data); err != nil {
				t.Fatal(err)
			}
			return c.DecayCountWithin(5)
		}
		return count(t1) <= count(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
