package dram

import (
	"testing"

	"probablecause/internal/bitset"
)

// tinyConfig returns a small chip for fast unit tests: 16 rows × 32 cols ×
// 4 bits = 2048 bits = 256 bytes.
func tinyConfig(seed uint64) Config {
	cfg := KM41464A(seed)
	cfg.Geometry = Geometry{Rows: 16, Cols: 32, BitsPerWord: 4, DefaultStripe: 2}
	return cfg
}

func mustChip(t *testing.T, cfg Config) *Chip {
	t.Helper()
	c, err := NewChip(cfg)
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	g := Geometry{Rows: 256, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	if g.Bits() != 262144 {
		t.Fatalf("Bits = %d, want 262144 (KM41464A)", g.Bits())
	}
	if g.Bytes() != 32768 {
		t.Fatalf("Bytes = %d, want 32768", g.Bytes())
	}
	if g.Pages() != 8 {
		t.Fatalf("Pages = %d, want 8", g.Pages())
	}
	if g.RowBits() != 1024 {
		t.Fatalf("RowBits = %d, want 1024", g.RowBits())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Geometry: Geometry{Rows: 1, Cols: 1, BitsPerWord: 1, DefaultStripe: 1}}, // nil retention; 1 bit unaligned too
		func() Config { c := tinyConfig(1); c.NoiseSigma = -1; return c }(),
		func() Config { c := tinyConfig(1); c.MaskWeight = 1.5; return c }(),
		func() Config { c := tinyConfig(1); c.Geometry.DefaultStripe = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewChip(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := NewChip(tinyConfig(1)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestWriteReadImmediate(t *testing.T) {
	c := mustChip(t, tinyConfig(1))
	data := []byte{0x00, 0xFF, 0xA5, 0x3C, 0x01}
	if err := c.Write(10, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(10, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("immediate read byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestRangeChecks(t *testing.T) {
	c := mustChip(t, tinyConfig(1))
	if err := c.Write(-1, []byte{0}); err == nil {
		t.Error("negative address accepted")
	}
	if err := c.Write(c.Geometry().Bytes(), []byte{0}); err == nil {
		t.Error("address past end accepted")
	}
	if _, err := c.Read(c.Geometry().Bytes()-1, 2); err == nil {
		t.Error("read past end accepted")
	}
}

func TestNoDecayBeforeRetention(t *testing.T) {
	c := mustChip(t, tinyConfig(2))
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// Minimum retention is well above 1 ms for the default distribution.
	c.Elapse(0.001)
	got, err := c.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("decay within 1ms at byte %d", i)
		}
	}
}

func TestFullDecayRevertsToDefaults(t *testing.T) {
	c := mustChip(t, tinyConfig(3))
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	c.Elapse(1e6) // far beyond every retention time
	got, err := c.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	es := bitset.FromBytes(got).Xor(bitset.FromBytes(data))
	if es.Count() != c.Geometry().Bits() {
		t.Fatalf("only %d/%d cells decayed after forever", es.Count(), c.Geometry().Bits())
	}
}

func TestWorstCaseDataChargesEveryCell(t *testing.T) {
	c := mustChip(t, tinyConfig(4))
	if err := c.Write(0, c.WorstCaseData()); err != nil {
		t.Fatal(err)
	}
	if got := c.ChargedCount(); got != c.Geometry().Bits() {
		t.Fatalf("ChargedCount = %d, want %d", got, c.Geometry().Bits())
	}
}

func TestDefaultDataChargesNothing(t *testing.T) {
	c := mustChip(t, tinyConfig(5))
	wc := c.WorstCaseData()
	inv := make([]byte, len(wc))
	for i := range wc {
		inv[i] = ^wc[i] // the default pattern itself
	}
	if err := c.Write(0, inv); err != nil {
		t.Fatal(err)
	}
	if got := c.ChargedCount(); got != 0 {
		t.Fatalf("ChargedCount = %d, want 0 for default pattern", got)
	}
	// With nothing charged, nothing can decay.
	c.Elapse(1e6)
	got, err := c.Read(0, len(inv))
	if err != nil {
		t.Fatal(err)
	}
	for i := range inv {
		if got[i] != inv[i] {
			t.Fatal("uncharged data corrupted by decay")
		}
	}
}

func TestDefaultStripeAlternates(t *testing.T) {
	c := mustChip(t, tinyConfig(6))
	wc := c.WorstCaseData()
	rowBytes := c.Geometry().RowBits() / 8
	stripe := c.Geometry().DefaultStripe
	// Worst case data = complement of defaults, so it must alternate between
	// 0x00-rows and 0xFF-rows every stripe rows.
	for r := 0; r < c.Geometry().Rows; r++ {
		want := byte(0xFF)
		if (r/stripe)%2 == 1 {
			want = 0x00
		}
		for b := 0; b < rowBytes; b++ {
			if wc[r*rowBytes+b] != want {
				t.Fatalf("row %d byte %d = %#x, want %#x", r, b, wc[r*rowBytes+b], want)
			}
		}
	}
}

func TestRefreshPreventsDecay(t *testing.T) {
	c := mustChip(t, tinyConfig(7))
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// Refresh every second for 30 seconds: even cells with ~5s retention
	// survive because each refresh restarts the clock.
	for i := 0; i < 30; i++ {
		c.Elapse(1.0)
		c.RefreshAll()
	}
	got, err := c.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	errs := bitset.FromBytes(got).Xor(bitset.FromBytes(data)).Count()
	if errs != 0 {
		t.Fatalf("%d errors despite 1s refresh", errs)
	}
}

func TestRefreshDoesNotResurrect(t *testing.T) {
	c := mustChip(t, tinyConfig(8))
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	c.Elapse(8.0) // long enough that some cells decayed
	before, err := c.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	lost := bitset.FromBytes(before).Xor(bitset.FromBytes(data))
	if lost.Count() == 0 {
		t.Fatal("test premise broken: no decay after 8s")
	}
	c.RefreshAll()
	c.Elapse(0.1)
	after, err := c.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	lostAfter := bitset.FromBytes(after).Xor(bitset.FromBytes(data))
	if !lost.Equal(lostAfter) {
		t.Fatal("refresh changed the set of lost cells (resurrected or lost more instantly)")
	}
}

func TestDecayIsMonotoneInTime(t *testing.T) {
	c := mustChip(t, tinyConfig(9))
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	var prev *bitset.Set
	for _, dt := range []float64{2, 2, 2, 2, 2} {
		c.Elapse(dt)
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		es := bitset.FromBytes(got).Xor(bitset.FromBytes(data))
		if prev != nil && !prev.IsSubset(es) {
			t.Fatal("a decayed cell came back without refresh")
		}
		prev = es
	}
}

func TestTemperatureAcceleratesDecay(t *testing.T) {
	errorsAt := func(temp float64) int {
		c := mustChip(t, tinyConfig(10))
		c.SetTemperature(temp)
		data := c.WorstCaseData()
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(5.0)
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(got).Xor(bitset.FromBytes(data)).Count()
	}
	e40, e50, e60 := errorsAt(40), errorsAt(50), errorsAt(60)
	if !(e40 < e50 && e50 < e60) {
		t.Fatalf("errors not increasing with temperature: %d, %d, %d", e40, e50, e60)
	}
}

func TestChipIdentityIsDeterministic(t *testing.T) {
	run := func() []byte {
		c := mustChip(t, tinyConfig(77))
		data := c.WorstCaseData()
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(6)
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different decay pattern")
		}
	}
}

func TestDifferentChipsDiffer(t *testing.T) {
	read := func(seed uint64) *bitset.Set {
		c := mustChip(t, tinyConfig(seed))
		data := c.WorstCaseData()
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(6)
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(got).Xor(bitset.FromBytes(data))
	}
	a, b := read(100), read(200)
	if a.Count() == 0 || b.Count() == 0 {
		t.Fatal("premise broken: no decay at 6s")
	}
	inter := a.AndCount(b)
	// With mask weight 0.05 the shared fraction is small: the overlap should
	// be far below either error count.
	if inter*2 > a.Count() {
		t.Fatalf("chips too similar: |a∩b|=%d |a|=%d |b|=%d", inter, a.Count(), b.Count())
	}
}

func TestDecayCountWithinMatchesRead(t *testing.T) {
	c := mustChip(t, tinyConfig(11))
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	for _, dt := range []float64{1, 4, 7, 10, 20} {
		want := func() int {
			// Count by actually elapsing on a scratch clone via re-read.
			cc := mustChip(t, tinyConfig(11))
			if err := cc.Write(0, data); err != nil {
				t.Fatal(err)
			}
			cc.Elapse(dt)
			got, err := cc.Read(0, len(data))
			if err != nil {
				t.Fatal(err)
			}
			return bitset.FromBytes(got).Xor(bitset.FromBytes(data)).Count()
		}()
		if got := c.DecayCountWithin(dt); got != want {
			t.Fatalf("DecayCountWithin(%v) = %d, want %d", dt, got, want)
		}
	}
}

func TestElapseNegativePanics(t *testing.T) {
	c := mustChip(t, tinyConfig(12))
	defer func() {
		if recover() == nil {
			t.Fatal("Elapse(-1) did not panic")
		}
	}()
	c.Elapse(-1)
}

func TestRefreshRowRange(t *testing.T) {
	c := mustChip(t, tinyConfig(13))
	if err := c.RefreshRow(-1); err == nil {
		t.Error("row -1 accepted")
	}
	if err := c.RefreshRow(c.Geometry().Rows); err == nil {
		t.Error("row past end accepted")
	}
	if err := c.RefreshRow(0); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestDDR2Preset(t *testing.T) {
	cfg := DDR2(5)
	cfg.Geometry = Geometry{Rows: 64, Cols: 256, BitsPerWord: 1, DefaultStripe: 4}
	c := mustChip(t, cfg)
	data := c.WorstCaseData()
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	c.Elapse(6)
	got, err := c.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if bitset.FromBytes(got).Xor(bitset.FromBytes(data)).Count() == 0 {
		t.Fatal("DDR2 window shows no decay at 6s")
	}
}

func TestVRTValidation(t *testing.T) {
	cfg := tinyConfig(20)
	cfg.VRTFraction = -0.1
	if _, err := NewChip(cfg); err == nil {
		t.Error("negative VRT fraction accepted")
	}
	cfg = tinyConfig(20)
	cfg.VRTFraction = 0.5
	cfg.VRTFactor = 0.5
	if _, err := NewChip(cfg); err == nil {
		t.Error("VRT factor < 1 accepted")
	}
}

func TestVRTCellsToggleAcrossEpochs(t *testing.T) {
	// With an extreme VRT population the set of failing cells at a fixed
	// interval must vary across recharges — the telegraph-noise signature.
	cfg := tinyConfig(21)
	cfg.VRTFraction = 1.0
	cfg.VRTFactor = 3
	cfg.NoiseSigma = 0
	c := mustChip(t, cfg)
	data := c.WorstCaseData()
	read := func() *bitset.Set {
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(15) // between base (~10s) and high (~30s) retention
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(got).Xor(bitset.FromBytes(data))
	}
	a, b := read(), read()
	if a.Equal(b) {
		t.Fatal("VRT cells produced identical error sets across epochs")
	}
	// Roughly half the straddling cells should flip between runs.
	if a.XorCount(b) == 0 {
		t.Fatal("no toggling cells")
	}
}

func TestVRTProducesFailureOrderExceptions(t *testing.T) {
	// §7.4's exceptions: a cell failing at the short interval in one epoch
	// but holding at a longer interval in a later epoch requires VRT.
	cfg := KM41464A(22)
	cfg.Geometry = Geometry{Rows: 128, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	errorsAt := func(c *Chip, dt float64) *bitset.Set {
		data := c.WorstCaseData()
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(dt)
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(got).Xor(bitset.FromBytes(data))
	}
	// Without VRT: perfect subset relation.
	noVRT := cfg
	noVRT.VRTFraction = 0
	c1 := mustChip(t, noVRT)
	short := errorsAt(c1, 5.3)
	long := errorsAt(c1, 6.7)
	if ex := short.AndNotCount(long); ex != 0 {
		t.Fatalf("noise-only model produced %d exceptions; expected 0", ex)
	}
	// With a strong VRT population: some exceptions appear.
	withVRT := cfg
	withVRT.VRTFraction = 0.05
	c2 := mustChip(t, withVRT)
	short2 := errorsAt(c2, 5.3)
	long2 := errorsAt(c2, 6.7)
	if ex := short2.AndNotCount(long2); ex == 0 {
		t.Fatal("VRT model produced no order-of-failure exceptions")
	}
}

func TestSetVoltsValidation(t *testing.T) {
	c := mustChip(t, tinyConfig(30))
	for _, v := range []float64{0, 2.0, 5.1, -1} {
		if err := c.SetVolts(v); err == nil {
			t.Errorf("voltage %v accepted", v)
		}
	}
	if err := c.SetVolts(3.5); err != nil {
		t.Errorf("valid voltage rejected: %v", err)
	}
	if c.Volts() != 3.5 {
		t.Fatalf("Volts = %v", c.Volts())
	}
	// Chips without a voltage model reject the knob entirely.
	cfg := tinyConfig(30)
	cfg.NominalVolts, cfg.MinVolts = 0, 0
	c2 := mustChip(t, cfg)
	if err := c2.SetVolts(3); err == nil {
		t.Error("voltage accepted on chip without voltage model")
	}
}

func TestVoltageRangeValidation(t *testing.T) {
	cfg := tinyConfig(31)
	cfg.NominalVolts, cfg.MinVolts = 2, 3 // inverted
	if _, err := NewChip(cfg); err == nil {
		t.Error("inverted voltage range accepted")
	}
	cfg = tinyConfig(31)
	cfg.NominalVolts, cfg.MinVolts = 5, -1
	if _, err := NewChip(cfg); err == nil {
		t.Error("negative min voltage accepted")
	}
}

func TestLowerVoltageAcceleratesDecay(t *testing.T) {
	errorsAt := func(v float64) int {
		c := mustChip(t, tinyConfig(32))
		if err := c.SetVolts(v); err != nil {
			t.Fatal(err)
		}
		data := c.WorstCaseData()
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(2.0)
		got, err := c.Read(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(got).Xor(bitset.FromBytes(data)).Count()
	}
	e50, e35, e25 := errorsAt(5.0), errorsAt(3.5), errorsAt(2.5)
	if !(e50 < e35 && e35 < e25) {
		t.Fatalf("errors not increasing as voltage drops: %d, %d, %d", e50, e35, e25)
	}
}

func TestNominalVoltageIsNeutral(t *testing.T) {
	a := mustChip(t, tinyConfig(33))
	b := mustChip(t, tinyConfig(33))
	if err := b.SetVolts(b.Config().NominalVolts); err != nil {
		t.Fatal(err)
	}
	data := a.WorstCaseData()
	for _, c := range []*Chip{a, b} {
		if err := c.Write(0, data); err != nil {
			t.Fatal(err)
		}
		c.Elapse(6)
	}
	ra, err := a.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("explicit nominal voltage changed behaviour")
		}
	}
}
