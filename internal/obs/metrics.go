package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any sign, but counters are conventionally monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions (cluster counts, pages
// covered, queue depths).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a concurrent-safe collection of named metrics. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry behind the C, G, and H accessors.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent callers.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = NewHistogram()
	r.histograms[name] = h
	return h
}

// C returns a counter from the Default registry. Instrumented packages hold
// the result in a package-level var so the map lookup happens once.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// Snapshot is a point-in-time copy of a registry, serializable as JSON. The
// shape is stable: BENCH_*.json perf trajectories diff these files across
// PRs.
type Snapshot struct {
	TakenAt    string                       `json:"taken_at"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		TakenAt:    time.Now().UTC().Format(time.RFC3339),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteReportFile dumps the Default registry snapshot to path — the
// implementation behind the -obs.report flag and the OBS_REPORT bench hook.
func WriteReportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Default.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// promName maps a dotted metric name to the Prometheus character set.
func promName(name string) string {
	return "pc_" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as summaries
// with p50/p90/p99 quantile labels. Output is sorted by name so it is
// stable for golden tests.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %d\n", pn, h.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %d\n", pn, h.P90)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %d\n", pn, h.P99)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
