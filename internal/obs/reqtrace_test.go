package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func enableForTest(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	h := FormatTraceHeader(0xDEADBEEF12345678, 0x0123456789ABCDEF)
	tid, sid, ok := ParseTraceHeader(h)
	if !ok || tid != 0xDEADBEEF12345678 || sid != 0x0123456789ABCDEF {
		t.Fatalf("round trip %q → (%x, %x, %v)", h, tid, sid, ok)
	}
	for _, bad := range []string{
		"", "zz", "123", // too short / not hex
		"00000000000000000-0000000000000001",               // 17-digit trace id
		"0000000000000000-0000000000000001",                // zero trace id
		"g000000000000000-0000000000000001",                // non-hex
		"0000000000000001-123",                             // short span id
		"0000000000000001-00000000000000010",               // long span id
		strings.Repeat("0", 15) + "1-" + " 000000000000001", // whitespace
	} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
	// Bare trace id (no span part) is valid.
	if tid, sid, ok := ParseTraceHeader("00000000000000ab"); !ok || tid != 0xab || sid != 0 {
		t.Errorf("bare trace id → (%x, %x, %v)", tid, sid, ok)
	}
}

func TestStartRequestOffIsNil(t *testing.T) {
	Disable()
	ctx, root := StartRequest(context.Background(), "identify", "")
	if root != nil {
		t.Fatal("StartRequest returned a span with instrumentation off")
	}
	// Every nil-receiver method must be a no-op, not a panic.
	root.SetAttr("k", 1)
	c := root.Child("child")
	c.End()
	root.End()
	if root.Header() != "" || root.Name() != "" || root.Trace() != nil {
		t.Error("nil span accessors should return zero values")
	}
	if SpanFrom(ctx) != nil {
		t.Error("context should carry no span when instrumentation is off")
	}
}

func TestRequestSpanTree(t *testing.T) {
	enableForTest(t)
	ctx, root := StartRequest(context.Background(), "identify", "")
	if root == nil {
		t.Fatal("no root span with instrumentation on")
	}
	q := root.Child("queue.wait")
	q.End()
	bctx, b := StartChild(ctx, "batch")
	b.SetAttr("batch_size", 3)
	for i := 0; i < 2; i++ {
		s := SpanFrom(bctx).Child("shard.identify")
		s.SetAttr("shard", i)
		s.End()
	}
	d := b.Child("decide")
	d.End()
	b.End()
	root.End()

	tree := root.Trace().Tree()
	if tree == nil || tree.Name != "identify" {
		t.Fatalf("tree root = %+v", tree)
	}
	counts := map[string]int{}
	tree.Walk(func(n *SpanTree) { counts[n.Name]++ })
	want := map[string]int{"identify": 1, "queue.wait": 1, "batch": 1, "shard.identify": 2, "decide": 1}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("span %q appears %d times, want %d (tree %+v)", name, counts[name], n, counts)
		}
	}
	// Nesting: shard.identify and decide are children of batch, not root.
	var batch *SpanTree
	for _, c := range tree.Children {
		if c.Name == "batch" {
			batch = c
		}
	}
	if batch == nil || len(batch.Children) != 3 {
		t.Fatalf("batch node = %+v", batch)
	}
	if batch.Attrs["batch_size"] != 3 {
		t.Errorf("batch attrs = %v", batch.Attrs)
	}
	if root.Trace().DurNS() <= 0 {
		t.Error("root duration not recorded")
	}
}

func TestStartRequestAdoptsHeader(t *testing.T) {
	enableForTest(t)
	h := FormatTraceHeader(0xABCDEF, 0x123456)
	_, root := StartRequest(context.Background(), "identify", h)
	defer root.End()
	if got := root.Trace().ID(); got != "0000000000abcdef" {
		t.Fatalf("trace id %q did not adopt the header's", got)
	}
	tree := root.Trace().Tree()
	if tree.Attrs["remote_parent"] != "0000000000123456" {
		t.Errorf("remote parent attr missing: %v", tree.Attrs)
	}
	// The response header names this trace but the server-side root span.
	tid, sid, ok := ParseTraceHeader(root.Header())
	if !ok || tid != 0xABCDEF || sid == 0x123456 {
		t.Errorf("response header %q", root.Header())
	}
}

// TestTraceConcurrentSpans hammers one trace from many goroutines; run
// under -race this is the data-safety check for cross-goroutine span
// creation (the batcher and shard fan-out do exactly this).
func TestTraceConcurrentSpans(t *testing.T) {
	enableForTest(t)
	ctx, root := StartRequest(context.Background(), "load", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, c := StartChild(ctx, "work")
				c.SetAttr("g", g)
				c.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	n := 0
	root.Trace().Tree().Walk(func(*SpanTree) { n++ })
	if n != 1+8*50 {
		t.Fatalf("tree has %d spans, want %d", n, 1+8*50)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	const n = 10000
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id := newID()
		if id == 0 || seen[id] {
			t.Fatalf("id %x duplicated or zero at %d", id, i)
		}
		seen[id] = true
	}
}

func TestRequestTreeFilesToTracer(t *testing.T) {
	enableForTest(t)
	EnableTracing()
	defer ResetTracing()
	_, root := StartRequest(context.Background(), "identify", "")
	root.Child("queue.wait").End()
	root.End()
	var names []string
	for _, r := range TraceRecords() {
		names = append(names, r.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "identify") || !strings.Contains(joined, "queue.wait") {
		t.Fatalf("chrome tracer records %v missing request spans", names)
	}
}

func TestSpanDoubleEndKeepsFirstDuration(t *testing.T) {
	enableForTest(t)
	_, root := StartRequest(context.Background(), "r", "")
	root.End()
	d1 := root.Trace().DurNS()
	time.Sleep(2 * time.Millisecond)
	root.End()
	if d2 := root.Trace().DurNS(); d2 != d1 {
		t.Fatalf("double End changed duration %d → %d", d1, d2)
	}
}
