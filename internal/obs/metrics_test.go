package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryGetOrCreate verifies that repeated lookups return the same
// metric instance, so package-level vars and dynamic lookups can mix.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter(x) returned distinct instances")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge(x) returned distinct instances")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram(x) returned distinct instances")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines — run
// under -race, this is the concurrency guarantee of the tentpole. Writers
// create and update metrics while readers snapshot mid-flight.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"shared", "per-" + string(rune('a'+w))}
			for i := 0; i < rounds; i++ {
				for _, n := range names {
					r.Counter(n).Inc()
					r.Gauge(n).Set(int64(i))
					r.Histogram(n).Observe(int64(i % 257))
				}
			}
		}(w)
	}
	// Concurrent snapshot readers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := r.Snapshot()
				if got := s.Counters["shared"]; got < 0 {
					t.Errorf("negative counter in snapshot: %d", got)
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got, want := s.Counters["shared"], int64(workers*rounds); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	if got, want := s.Histograms["shared"].Count, int64(workers*rounds); got != want {
		t.Errorf("shared histogram count = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		name := "per-" + string(rune('a'+w))
		if got, want := s.Counters[name], int64(rounds); got != want {
			t.Errorf("%s counter = %d, want %d", name, got, want)
		}
	}
}

// TestSnapshotJSONShape pins the report schema that BENCH_*.json
// trajectories depend on.
func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("calls").Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat").Observe(100)
	var buf strings.Builder
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TakenAt    string                       `json:"taken_at"`
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.TakenAt == "" {
		t.Error("snapshot missing taken_at")
	}
	if decoded.Counters["calls"] != 3 || decoded.Gauges["depth"] != -2 {
		t.Errorf("snapshot values wrong: %+v", decoded)
	}
	if h := decoded.Histograms["lat"]; h.Count != 1 || h.Min != 100 || h.Max != 100 {
		t.Errorf("histogram snapshot wrong: %+v", h)
	}
}

// TestOnOffGate checks the global enable switch that hot paths branch on.
func TestOnOffGate(t *testing.T) {
	defer Disable()
	Disable()
	if On() {
		t.Fatal("On() true after Disable")
	}
	Enable()
	if !On() {
		t.Fatal("On() false after Enable")
	}
}
