package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("identify:p99<50ms, enroll:err<0.1%")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives", len(objs))
	}
	if o := objs[0]; o.Name != "identify-p99" || o.Endpoint != "identify" || o.Latency != 50*time.Millisecond || o.Target != 0.99 {
		t.Errorf("latency objective = %+v", o)
	}
	if o := objs[1]; o.Name != "enroll-err" || o.Latency != 0 || o.Target != 0.999 {
		t.Errorf("availability objective = %+v", o)
	}
	if objs, err := ParseObjectives(""); err != nil || objs != nil {
		t.Errorf("empty spec → (%v, %v)", objs, err)
	}
	for _, bad := range []string{
		"identify",            // no rule
		"identify:p99",        // no bound
		"identify:p99<",       // empty bound
		"identify:p0<50ms",    // percentile out of range
		"identify:p101<50ms",  // percentile out of range
		"identify:err<150%",   // percentage out of range
		"identify:err<0.1",    // missing %
		"identify:q99<50ms",   // unknown kind
		":p99<50ms",           // no endpoint
		"identify:p99<50bogus", // bad duration
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

// sloClock is a settable test clock.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time { return c.t }

func newTestEngine(t *testing.T, objs ...Objective) (*SLOEngine, *sloClock) {
	t.Helper()
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	e, err := NewSLOEngine(SLOConfig{
		Objectives: objs,
		Bucket:     time.Second,
		Windows:    []time.Duration{10 * time.Second, 30 * time.Second, time.Minute, 5 * time.Minute},
		Now:        clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, clk
}

func TestSLOEngineNilAndEmpty(t *testing.T) {
	e, err := NewSLOEngine(SLOConfig{})
	if err != nil || e != nil {
		t.Fatalf("no objectives → (%v, %v)", e, err)
	}
	var nilEngine *SLOEngine
	nilEngine.Observe("identify", 1, false) // must not panic
	if rep := nilEngine.Report(); rep.Status != "ok" || len(rep.Objectives) != 0 {
		t.Errorf("nil engine report = %+v", rep)
	}
	if nilEngine.Status() != "ok" {
		t.Error("nil engine status")
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	e, _ := newTestEngine(t, Objective{Name: "identify-p99", Endpoint: "identify", Latency: 50 * time.Millisecond, Target: 0.99})
	// 100 requests, all inside the bound: SLI 1, burn 0, status ok.
	for i := 0; i < 100; i++ {
		e.Observe("identify", (5 * time.Millisecond).Nanoseconds(), false)
	}
	rep := e.Report()
	if rep.Status != "ok" {
		t.Fatalf("status %q with all-good traffic", rep.Status)
	}
	or := rep.Objectives[0]
	if or.Kind != "latency" || or.Latency != "50ms" {
		t.Errorf("objective report = %+v", or)
	}
	w := or.Windows[0]
	if w.Total != 100 || w.Bad != 0 || w.SLI != 1 || w.BurnRate != 0 {
		t.Errorf("window = %+v", w)
	}
	if w.P50MS <= 0 || w.P50MS > 50 {
		t.Errorf("windowed p50 %vms implausible for 5ms traffic", w.P50MS)
	}
}

func TestSLOBurnCritical(t *testing.T) {
	e, _ := newTestEngine(t, Objective{Name: "identify-p99", Endpoint: "identify", Latency: 50 * time.Millisecond, Target: 0.99})
	// Every request busts the bound: bad fraction 1, burn 1/(1-0.99) = 100
	// in every window → critical, and /healthz would degrade.
	for i := 0; i < 50; i++ {
		e.Observe("identify", (200 * time.Millisecond).Nanoseconds(), false)
	}
	rep := e.Report()
	if rep.Status != "critical" {
		t.Fatalf("status %q, want critical (report %+v)", rep.Status, rep.Objectives[0].Windows)
	}
	if burn := rep.Objectives[0].Windows[0].BurnRate; burn < BurnCritical {
		t.Errorf("burn %v below the critical threshold", burn)
	}
	if e.Status() != "critical" {
		t.Error("Status() disagrees with Report()")
	}
}

func TestSLOAvailabilityObjective(t *testing.T) {
	e, _ := newTestEngine(t, Objective{Name: "identify-err", Endpoint: "identify", Target: 0.9})
	// 10% errors exactly at target: burn 1, well under the warn pair.
	for i := 0; i < 100; i++ {
		e.Observe("identify", int64(time.Millisecond), i%10 == 0)
	}
	rep := e.Report()
	w := rep.Objectives[0].Windows[0]
	if w.Bad != 10 || w.SLI != 0.9 {
		t.Fatalf("window = %+v", w)
	}
	if w.BurnRate < 0.99 || w.BurnRate > 1.01 {
		t.Errorf("burn %v, want ≈1", w.BurnRate)
	}
	if rep.Status != "ok" {
		t.Errorf("status %q at exactly-budget burn", rep.Status)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	e, clk := newTestEngine(t, Objective{Name: "identify-p99", Endpoint: "identify", Latency: 50 * time.Millisecond, Target: 0.99})
	for i := 0; i < 20; i++ {
		e.Observe("identify", (500 * time.Millisecond).Nanoseconds(), false)
	}
	if e.Report().Status != "critical" {
		t.Fatal("want critical while the bad burst is in-window")
	}
	// Advance past every window: the burst ages out of the ring and the
	// engine returns to ok (SLI 1 with no traffic).
	clk.t = clk.t.Add(10 * time.Minute)
	rep := e.Report()
	if rep.Status != "ok" {
		t.Fatalf("status %q after the burst aged out", rep.Status)
	}
	if w := rep.Objectives[0].Windows[0]; w.Total != 0 || w.SLI != 1 {
		t.Errorf("aged-out window = %+v", w)
	}
}

func TestSLOShortWindowRecovers(t *testing.T) {
	e, clk := newTestEngine(t, Objective{Name: "identify-p99", Endpoint: "identify", Latency: 50 * time.Millisecond, Target: 0.99})
	// A bad burst, then 40s of good traffic: the 10s and 30s windows see
	// only good requests, so the fast alert pair clears even though the
	// 5m window still burns — the multi-window rule in action.
	for i := 0; i < 50; i++ {
		e.Observe("identify", (500 * time.Millisecond).Nanoseconds(), false)
	}
	for s := 0; s < 40; s++ {
		clk.t = clk.t.Add(time.Second)
		for i := 0; i < 5; i++ {
			e.Observe("identify", (2 * time.Millisecond).Nanoseconds(), false)
		}
	}
	rep := e.Report()
	or := rep.Objectives[0]
	if or.Windows[0].BurnRate != 0 {
		t.Errorf("10s window still burning: %+v", or.Windows[0])
	}
	if last := or.Windows[len(or.Windows)-1]; last.BurnRate <= BurnCritical {
		t.Errorf("5m window should still burn hot: %+v", last)
	}
	if or.Status == "critical" {
		t.Errorf("fast pair cleared but status is still critical: %+v", or)
	}
}

func TestSLOPrometheusExport(t *testing.T) {
	e, _ := newTestEngine(t, Objective{Name: "identify-p99", Endpoint: "identify", Latency: 50 * time.Millisecond, Target: 0.99})
	e.Observe("identify", (200 * time.Millisecond).Nanoseconds(), false)
	var b strings.Builder
	if err := e.Report().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pc_slo_status",
		`pc_slo_objective_status{objective="identify-p99"}`,
		`pc_slo_burn_rate{objective="identify-p99",window="10s"}`,
		`pc_slo_sli{objective="identify-p99"`,
		`pc_slo_p99_ms{objective="identify-p99"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

func TestSLOConfigValidation(t *testing.T) {
	bad := []SLOConfig{
		{Objectives: []Objective{{Name: "x", Endpoint: "", Target: 0.9}}},
		{Objectives: []Objective{{Name: "x", Endpoint: "e", Target: 0}}},
		{Objectives: []Objective{{Name: "x", Endpoint: "e", Target: 1.5}}},
		{Objectives: []Objective{{Name: "x", Endpoint: "e", Target: 0.9}},
			Bucket: time.Minute, Windows: []time.Duration{time.Second}},
	}
	for i, cfg := range bad {
		if _, err := NewSLOEngine(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
