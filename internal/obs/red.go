package obs

// RED metrics: the rate / errors / duration triple every serving
// endpoint registers. One NewRED call per endpoint wires three metrics
// into a registry under a shared prefix:
//
//	<prefix>.requests   counter — every request (the R)
//	<prefix>.errors     counter — requests that failed server-side (the E)
//	<prefix>.nanos      histogram — request latency (the D)
//
// so /metrics carries a uniform per-endpoint block and the SLO engine,
// dashboards, and BENCH snapshots all read the same names.

// RED is one endpoint's rate/errors/duration triple.
type RED struct {
	Requests *Counter
	Errors   *Counter
	Duration *Histogram
}

// NewRED registers (or reuses) the triple under prefix in r.
func NewRED(r *Registry, prefix string) *RED {
	return &RED{
		Requests: r.Counter(prefix + ".requests"),
		Errors:   r.Counter(prefix + ".errors"),
		Duration: r.Histogram(prefix + ".nanos"),
	}
}

// Observe records one request.
func (m *RED) Observe(durNS int64, isErr bool) {
	m.Requests.Inc()
	if isErr {
		m.Errors.Inc()
	}
	m.Duration.Observe(durNS)
}
