package obs

import (
	"flag"
	"fmt"
	"os"
)

// Options is the -obs.* flag family shared by every command. Zero values
// mean "off"; any non-zero observability output (report, http, trace)
// enables instrumentation for the run.
type Options struct {
	HTTP     string // -obs.http: debug server listen address
	Report   string // -obs.report: metrics snapshot JSON written at exit
	TraceOut string // -obs.trace: chrome://tracing span log written at exit
	LogLevel string // -obs.log: minimum log level
	Force    bool   // -obs: enable instrumentation with no output configured
}

// AddFlags installs the flag family on fs and returns the destination.
func AddFlags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.BoolVar(&o.Force, "obs", false, "enable instrumentation (implied by the other -obs.* flags)")
	fs.StringVar(&o.HTTP, "obs.http", "", "serve /metrics, expvar and pprof on this address (e.g. :6060)")
	fs.StringVar(&o.Report, "obs.report", "", "write a JSON metrics snapshot to this file at exit")
	fs.StringVar(&o.TraceOut, "obs.trace", "", "write a chrome://tracing span log to this file at exit")
	fs.StringVar(&o.LogLevel, "obs.log", "warn", "log level: debug, info, warn, error")
	return o
}

// Activate applies the parsed options: sets the log level, enables
// instrumentation if any output is configured, and starts the debug server.
// The returned finish function writes the report and trace files; call it
// once when the command is done (its error matters — a report that failed
// to write is a failed run for whoever asked for the report).
func (o *Options) Activate() (finish func() error, err error) {
	lvl, err := ParseLevel(o.LogLevel)
	if err != nil {
		return nil, err
	}
	SetLogLevel(lvl)
	// A verbose log level counts as configured output: the debug/info call
	// sites sit behind On() guards, so without this they would never fire.
	if o.Force || o.HTTP != "" || o.Report != "" || o.TraceOut != "" || lvl < LevelWarn {
		Enable()
	}
	if o.TraceOut != "" {
		EnableTracing()
	}
	var srv *Server
	if o.HTTP != "" {
		if srv, err = StartServer(o.HTTP); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: debug server on http://%s (metrics, expvar, pprof)\n", srv.Addr())
	}
	return func() error {
		if srv != nil {
			srv.Close()
		}
		if o.Report != "" {
			if err := WriteReportFile(o.Report); err != nil {
				return fmt.Errorf("obs: writing report: %w", err)
			}
		}
		if o.TraceOut != "" {
			f, err := os.Create(o.TraceOut)
			if err != nil {
				return fmt.Errorf("obs: writing trace: %w", err)
			}
			if err := WriteTrace(f); err != nil {
				f.Close()
				return fmt.Errorf("obs: writing trace: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("obs: writing trace: %w", err)
			}
		}
		return nil
	}, nil
}
