package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanNestingAndOrdering opens a three-deep span stack plus a sibling
// and checks parent links, track inheritance, and completion order.
func TestSpanNestingAndOrdering(t *testing.T) {
	ResetTracing()
	EnableTracing()
	defer func() { ResetTracing(); Disable() }()

	ctx := context.Background()
	ctx1, root := Start(ctx, "root")
	root.SetAttr("samples", 3)
	ctx2, child := Start(ctx1, "child")
	_, grand := Start(ctx2, "grandchild")
	grand.End()
	child.End()
	_, sibling := Start(ctx1, "sibling")
	sibling.End()
	root.End()

	recs := TraceRecords()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(recs), recs)
	}
	// Completion order: innermost first.
	wantOrder := []string{"grandchild", "child", "sibling", "root"}
	for i, want := range wantOrder {
		if recs[i].Name != want {
			t.Errorf("record %d = %s, want %s", i, recs[i].Name, want)
		}
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["child"].ParentGo != "root" || byName["grandchild"].ParentGo != "child" || byName["sibling"].ParentGo != "root" {
		t.Errorf("parent links wrong: %+v", byName)
	}
	if byName["root"].ParentGo != "" {
		t.Errorf("root has parent %q", byName["root"].ParentGo)
	}
	// One span stack shares one track id.
	tid := byName["root"].TID
	for _, name := range []string{"child", "grandchild", "sibling"} {
		if byName[name].TID != tid {
			t.Errorf("%s on track %d, root on %d", name, byName[name].TID, tid)
		}
	}
	// Attrs survive into args.
	if got := byName["root"].Args["samples"]; got != 3 {
		t.Errorf("root args = %v, want samples=3", byName["root"].Args)
	}
	// Containment: children start no earlier and end no later than root.
	rootEnd := byName["root"].StartUS + byName["root"].DurUS
	for _, name := range wantOrder[:3] {
		r := byName[name]
		if r.StartUS < byName["root"].StartUS || r.StartUS+r.DurUS > rootEnd {
			t.Errorf("%s [%d,%d] escapes root [%d,%d]",
				name, r.StartUS, r.StartUS+r.DurUS, byName["root"].StartUS, rootEnd)
		}
	}
}

// TestSpanDisabledIsNoop: with tracing off, Start returns a nil span whose
// methods are safe, and nothing is recorded.
func TestSpanDisabledIsNoop(t *testing.T) {
	ResetTracing()
	ctx, sp := Start(context.Background(), "ghost")
	if sp != nil {
		t.Fatal("Start returned a live span while tracing disabled")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if ctx == nil {
		t.Fatal("Start returned nil context")
	}
	if got := TraceRecords(); len(got) != 0 {
		t.Fatalf("recorded %d spans while disabled", len(got))
	}
}

// TestSeparateRootsGetSeparateTracks: concurrent-looking root spans must not
// share a chrome tracing track, or their bars would falsely nest.
func TestSeparateRootsGetSeparateTracks(t *testing.T) {
	ResetTracing()
	EnableTracing()
	defer func() { ResetTracing(); Disable() }()
	_, a := Start(context.Background(), "a")
	_, b := Start(context.Background(), "b")
	a.End()
	b.End()
	recs := TraceRecords()
	if recs[0].TID == recs[1].TID {
		t.Errorf("independent roots share track %d", recs[0].TID)
	}
}

// TestWriteTraceChromeFormat checks the export is a JSON array of complete
// ("ph":"X") events — the chrome://tracing contract.
func TestWriteTraceChromeFormat(t *testing.T) {
	ResetTracing()
	EnableTracing()
	defer func() { ResetTracing(); Disable() }()
	_, sp := Start(context.Background(), "op")
	sp.SetAttr("pages", 8)
	sp.End()
	var buf strings.Builder
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e["ph"] != "X" || e["name"] != "op" {
		t.Errorf("event shape wrong: %v", e)
	}
	for _, key := range []string{"ts", "dur", "pid", "tid"} {
		if _, ok := e[key]; !ok {
			t.Errorf("event missing %q: %v", key, e)
		}
	}
}
