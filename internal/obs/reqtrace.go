package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: one ReqTrace per served request, carrying a
// process-unique trace id and a tree of timed spans. Unlike the
// chrome://tracing span log (trace.go), which is a process-global flat
// record stream, a ReqTrace is owned by the request that started it — it
// travels through context.Context across goroutine hops (the micro-batch
// dispatcher, the WAL group commit, the shard fan-out), so one batch
// execution records N child spans, one per coalesced request, and the
// serving layer can answer "where did THIS request's latency go?".
//
// The trace id round-trips through the X-PC-Trace HTTP header
// ("traceid" or "traceid-spanid", both 16 hex digits), so a caller can
// stitch the server-side span tree to its own telemetry, and a response
// can always be joined to its tree in /debug/slowest.
//
// Everything here is nil-safe: with instrumentation off StartRequest
// returns a nil *RSpan whose methods are all no-ops, so instrumented
// code needs no guards beyond passing the context along.

// TraceHeader is the HTTP header that propagates trace context.
const TraceHeader = "X-PC-Trace"

// idState seeds process-unique trace and span ids: a random base (so ids
// do not collide across restarts) advanced by an atomic counter and
// finalized through a splitmix64 step (so consecutive ids share no bits).
var idState struct {
	base uint64
	ctr  atomic.Uint64
}

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.base = binary.LittleEndian.Uint64(b[:])
	} else {
		idState.base = uint64(time.Now().UnixNano())
	}
}

// newID returns a fresh nonzero id.
func newID() uint64 {
	for {
		x := idState.base + idState.ctr.Add(1)*0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// ReqTrace is the span tree of one request. Spans may start and end on
// any goroutine; the trace's mutex serializes all mutation.
type ReqTrace struct {
	id    uint64
	start time.Time

	mu    sync.Mutex
	spans []*RSpan // in start order; spans[0] is the root
}

// RSpan is one timed operation inside a request trace. The zero of the
// type is never used; a nil *RSpan (tracing off) is the no-op span.
type RSpan struct {
	t      *ReqTrace
	id     uint64
	parent uint64 // parent span id; 0 for the root
	name   string
	start  time.Time
	dur    time.Duration // valid once done
	done   bool
	attrs  []Attr
}

type rspanCtxKey struct{}

// StartRequest opens a new request trace rooted at a span called name.
// header, when non-empty, is the inbound X-PC-Trace value: its trace id
// is adopted (so the caller's id names the server-side tree) and its
// span id, if present, is recorded as the remote parent. Returns the
// context carrying the root span; both returns are no-ops when
// instrumentation is off.
func StartRequest(ctx context.Context, name, header string) (context.Context, *RSpan) {
	if !On() {
		return ctx, nil
	}
	now := time.Now()
	t := &ReqTrace{start: now}
	root := &RSpan{t: t, id: newID(), name: name, start: now}
	if tid, sid, ok := ParseTraceHeader(header); ok {
		t.id = tid
		if sid != 0 {
			root.attrs = append(root.attrs, Attr{Key: "remote_parent", Value: fmt.Sprintf("%016x", sid)})
		}
	} else {
		t.id = newID()
	}
	t.spans = []*RSpan{root}
	return context.WithValue(ctx, rspanCtxKey{}, root), root
}

// ParseTraceHeader decodes an X-PC-Trace value: "traceid" or
// "traceid-spanid", each 16 hex digits.
func ParseTraceHeader(h string) (traceID, spanID uint64, ok bool) {
	if h == "" {
		return 0, 0, false
	}
	tpart, spart, dash := strings.Cut(h, "-")
	traceID, err := strconv.ParseUint(tpart, 16, 64)
	if err != nil || len(tpart) != 16 || traceID == 0 {
		return 0, 0, false
	}
	if dash {
		if spanID, err = strconv.ParseUint(spart, 16, 64); err != nil || len(spart) != 16 {
			return 0, 0, false
		}
	}
	return traceID, spanID, true
}

// FormatTraceHeader renders an X-PC-Trace value for a trace and span id.
func FormatTraceHeader(traceID, spanID uint64) string {
	return fmt.Sprintf("%016x-%016x", traceID, spanID)
}

// SpanFrom returns the request span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *RSpan {
	s, _ := ctx.Value(rspanCtxKey{}).(*RSpan)
	return s
}

// ContextWithSpan returns ctx carrying s, so later SpanFrom / StartChild
// calls nest under it. With a nil span it returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *RSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, rspanCtxKey{}, s)
}

// StartChild opens a child span under the span carried by ctx and
// returns the context carrying the child. No-ops when ctx carries no
// span.
func StartChild(ctx context.Context, name string) (context.Context, *RSpan) {
	c := SpanFrom(ctx).Child(name)
	return ContextWithSpan(ctx, c), c
}

// Child opens a child span. Safe on a nil receiver (returns nil).
func (s *RSpan) Child(name string) *RSpan {
	if s == nil {
		return nil
	}
	c := &RSpan{t: s.t, id: newID(), parent: s.id, name: name, start: time.Now()}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, c)
	s.t.mu.Unlock()
	return c
}

// SetAttr annotates the span. Safe on a nil receiver.
func (s *RSpan) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// End closes the span. Ending the root span also files the whole tree
// with the chrome tracer when -obs.trace collection is on, so request
// trees show up in the span log alongside the offline pipeline's spans.
// Safe on a nil receiver; double End keeps the first duration.
func (s *RSpan) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.t.mu.Lock()
	root := !s.done && s.parent == 0
	if !s.done {
		s.done = true
		s.dur = end.Sub(s.start)
	}
	s.t.mu.Unlock()
	if root && TracingEnabled() {
		s.t.fileToTracer()
	}
}

// Trace returns the trace this span belongs to (nil for a nil span).
func (s *RSpan) Trace() *ReqTrace {
	if s == nil {
		return nil
	}
	return s.t
}

// Name returns the span's name ("" for a nil span).
func (s *RSpan) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Header renders the X-PC-Trace value identifying this span ("" for a
// nil span): the response header, and the value a downstream hop would
// propagate.
func (s *RSpan) Header() string {
	if s == nil {
		return ""
	}
	return FormatTraceHeader(s.t.id, s.id)
}

// ID returns the trace id as the 16-hex-digit string used on the wire.
func (t *ReqTrace) ID() string { return fmt.Sprintf("%016x", t.id) }

// Start returns when the trace's root span started.
func (t *ReqTrace) Start() time.Time { return t.start }

// DurNS returns the root span's duration in nanoseconds (0 until the
// root has ended).
func (t *ReqTrace) DurNS() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0].dur.Nanoseconds()
}

// SpanTree is the JSON form of a trace: spans nested under their
// parents, offsets relative to the trace start. The /debug/slowest
// endpoint serves these.
type SpanTree struct {
	Name     string         `json:"name"`
	SpanID   string         `json:"span_id"`
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanTree    `json:"children,omitempty"`
}

// Tree exports the trace as a span tree. Spans still open render with
// their duration so far. Children appear in start order.
func (t *ReqTrace) Tree() *SpanTree {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make(map[uint64]*SpanTree, len(t.spans))
	var root *SpanTree
	for _, s := range t.spans {
		dur := s.dur
		if !s.done {
			dur = now.Sub(s.start)
		}
		n := &SpanTree{
			Name:    s.name,
			SpanID:  fmt.Sprintf("%016x", s.id),
			StartNS: s.start.Sub(t.start).Nanoseconds(),
			DurNS:   dur.Nanoseconds(),
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[s.id] = n
		if s.parent == 0 {
			root = n
		} else if p := nodes[s.parent]; p != nil {
			p.Children = append(p.Children, n)
		} else if root != nil {
			// Orphan (parent span from another trace epoch); keep it visible.
			root.Children = append(root.Children, n)
		}
	}
	return root
}

// Walk visits every node of the tree depth-first, parents before
// children.
func (n *SpanTree) Walk(visit func(*SpanTree)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// fileToTracer converts the trace's spans into chrome tracer records so
// -obs.trace logs include request trees. Each request renders on its own
// track (tid), spans tagged with the trace id.
func (t *ReqTrace) fileToTracer() {
	globalTracer.mu.Lock()
	on, epoch := globalTracer.on, globalTracer.epoch
	globalTracer.mu.Unlock()
	if !on {
		return
	}
	track := globalTracer.tracks.Add(1)
	id := t.ID()
	var recs []SpanRecord
	t.mu.Lock()
	for _, s := range t.spans {
		if !s.done {
			continue
		}
		recs = append(recs, SpanRecord{
			Name:    s.name,
			Phase:   "X",
			StartUS: s.start.Sub(epoch).Microseconds(),
			DurUS:   s.dur.Microseconds(),
			PID:     1,
			TID:     track,
			Args:    map[string]any{"trace": id},
		})
	}
	t.mu.Unlock()

	globalTracer.mu.Lock()
	defer globalTracer.mu.Unlock()
	if !globalTracer.on {
		return
	}
	globalTracer.records = append(globalTracer.records, recs...)
}
