package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: Start opens a timed span, End closes it and files a record
// with the process-wide tracer. Nesting travels through the context — a span
// started from a context carrying another span becomes its child and
// inherits its track id, so the chrome://tracing view (and any tool reading
// time containment on one track) reconstructs the call tree.
//
// Tracing is off by default; Start then returns a nil *Span whose methods
// are no-ops, so instrumented code needs no guards beyond passing the
// context along.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation.
type Span struct {
	name   string
	start  time.Time
	track  int64 // chrome tracing tid; shared down one span stack
	parent string
	attrs  []Attr
}

// SpanRecord is a completed span as stored by the tracer and exported to
// JSON. Times are microseconds, matching the chrome trace event format.
type SpanRecord struct {
	Name     string         `json:"name"`
	Phase    string         `json:"ph"` // always "X": complete event
	StartUS  int64          `json:"ts"`
	DurUS    int64          `json:"dur"`
	PID      int            `json:"pid"`
	TID      int64          `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
	ParentGo string         `json:"-"` // parent span name, for tests/log export
}

type tracer struct {
	mu      sync.Mutex
	on      bool
	epoch   time.Time
	records []SpanRecord
	tracks  atomic.Int64
}

var globalTracer tracer

// EnableTracing starts collecting spans (and implies Enable for the metrics
// side of the layer, since a trace without counters is half a picture).
func EnableTracing() {
	Enable()
	globalTracer.mu.Lock()
	defer globalTracer.mu.Unlock()
	if !globalTracer.on {
		globalTracer.on = true
		globalTracer.epoch = time.Now()
	}
}

// TracingEnabled reports whether spans are being collected.
func TracingEnabled() bool {
	globalTracer.mu.Lock()
	defer globalTracer.mu.Unlock()
	return globalTracer.on
}

// ResetTracing drops collected spans and disables collection (test hook).
func ResetTracing() {
	globalTracer.mu.Lock()
	defer globalTracer.mu.Unlock()
	globalTracer.on = false
	globalTracer.records = nil
}

type spanCtxKey struct{}

// Start opens a span. The returned context carries the span so that child
// calls to Start nest under it; pass it down the call path being traced.
// When tracing is disabled the span is nil and every method is a no-op.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if !TracingEnabled() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.track = parent.track
		s.parent = parent.name
	} else {
		s.track = globalTracer.tracks.Add(1)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and files it with the tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	rec := SpanRecord{
		Name:     s.name,
		Phase:    "X",
		DurUS:    end.Sub(s.start).Microseconds(),
		PID:      1,
		TID:      s.track,
		ParentGo: s.parent,
	}
	if len(s.attrs) > 0 {
		rec.Args = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Args[a.Key] = a.Value
		}
	}
	globalTracer.mu.Lock()
	defer globalTracer.mu.Unlock()
	if !globalTracer.on {
		return
	}
	rec.StartUS = s.start.Sub(globalTracer.epoch).Microseconds()
	globalTracer.records = append(globalTracer.records, rec)
}

// TraceRecords returns a copy of the spans collected so far, in completion
// order.
func TraceRecords() []SpanRecord {
	globalTracer.mu.Lock()
	defer globalTracer.mu.Unlock()
	out := make([]SpanRecord, len(globalTracer.records))
	copy(out, globalTracer.records)
	return out
}

// WriteTrace writes the collected spans as a chrome://tracing JSON array
// (load it via the "Load" button on chrome://tracing or in Perfetto).
func WriteTrace(w io.Writer) error {
	records := TraceRecords()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(records)
}
