package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled structured logging. One line per event:
//
//	2026-08-05T12:00:00Z INFO stitch resumed clusters=3 pages=412
//
// Values are rendered with %v; strings containing spaces are quoted. The
// logger writes to stderr so command stdout stays machine-readable.

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's canonical upper-case name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q", s)
	}
}

var (
	logLevel atomic.Int32 // default LevelWarn, set in init
	logMu    sync.Mutex
	logW     io.Writer = os.Stderr
)

func init() { logLevel.Store(int32(LevelWarn)) }

// SetLogLevel sets the minimum severity that is emitted.
func SetLogLevel(l Level) { logLevel.Store(int32(l)) }

// SetLogWriter redirects log output (test hook); pass nil to restore
// stderr.
func SetLogWriter(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	if w == nil {
		w = os.Stderr
	}
	logW = w
}

// Logf emits one structured line at the given level. kv is alternating
// key, value pairs; a trailing odd value is logged under the key "extra".
func Logf(l Level, msg string, kv ...any) {
	if l < Level(logLevel.Load()) {
		return
	}
	var b strings.Builder
	b.WriteString(time.Now().UTC().Format(time.RFC3339))
	b.WriteByte(' ')
	b.WriteString(l.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	for i := 0; i < len(kv); i += 2 {
		key, val := "extra", kv[i]
		if i+1 < len(kv) {
			key, val = fmt.Sprint(kv[i]), kv[i+1]
		}
		rendered := fmt.Sprint(val)
		if strings.ContainsAny(rendered, " \t\"") {
			rendered = fmt.Sprintf("%q", rendered)
		}
		fmt.Fprintf(&b, " %s=%s", key, rendered)
	}
	b.WriteByte('\n')
	logMu.Lock()
	defer logMu.Unlock()
	io.WriteString(logW, b.String())
}

// Debugf logs at debug level.
func Debugf(msg string, kv ...any) { Logf(LevelDebug, msg, kv...) }

// Infof logs at info level.
func Infof(msg string, kv ...any) { Logf(LevelInfo, msg, kv...) }

// Warnf logs at warn level.
func Warnf(msg string, kv ...any) { Logf(LevelWarn, msg, kv...) }

// Errorf logs at error level.
func Errorf(msg string, kv ...any) { Logf(LevelError, msg, kv...) }
