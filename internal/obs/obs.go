// Package obs is the observability layer of the repository: a dependency-free
// (standard library only) collection of metrics, span tracing, leveled
// logging, and debug-server plumbing shared by every package on the
// fingerprinting pipeline.
//
// The layer is built around one invariant: when observability is off — the
// default — instrumentation costs a single predictable branch on an atomic
// bool. Hot paths guard every metric update with On():
//
//	if obs.On() {
//		cDistanceCalls.Inc()
//	}
//
// so library users and benchmarks that never call Enable pay nothing.
//
// # Components
//
//   - Registry (metrics.go): concurrent-safe named counters, gauges, and
//     log-scale histograms with p50/p90/p99 snapshots. The package-level
//     Default registry backs the C, G, and H accessors.
//   - Span tracing (trace.go): Start(ctx, name) opens a timed span with
//     key/value attributes; completed spans export as chrome://tracing
//     compatible JSON events.
//   - Leveled logging (log.go): structured key=value lines to stderr.
//   - Debug server (http.go): /metrics in JSON and Prometheus text format,
//     expvar at /debug/vars, and net/http/pprof at /debug/pprof/.
//   - Flag plumbing (flags.go): AddFlags installs the -obs.* flag family on
//     a FlagSet; Options.Activate turns the layer on and returns a finish
//     function that writes the -obs.report snapshot and -obs.trace log.
package obs

import "sync/atomic"

// on gates every instrumentation site in the repository.
var on atomic.Bool

// On reports whether observability is enabled. Instrumented hot paths call
// it before touching any metric; when it returns false the instrumentation
// must cost nothing beyond the branch.
func On() bool { return on.Load() }

// Enable turns instrumentation on process-wide.
func Enable() { on.Store(true) }

// Disable turns instrumentation off process-wide. Metrics keep their values;
// they simply stop moving.
func Disable() { on.Store(false) }
