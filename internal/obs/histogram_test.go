package obs

import (
	"math"
	"testing"
)

// TestBucketIndexMonotone checks the bucket layout: indices are monotone in
// the value and the representative midpoint stays within the documented 3 %
// relative error.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 100, 1 << 20, 1<<20 + 1, 1 << 40, 1 << 62} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
		mid := bucketMid(i)
		if v >= histFirstExact {
			if rel := math.Abs(float64(mid-v)) / float64(v); rel > 1.0/32+1e-9 {
				t.Errorf("bucketMid(%d)=%d for value %d: relative error %.4f", i, mid, v, rel)
			}
		} else if mid != v {
			t.Errorf("exact bucket %d has midpoint %d", v, mid)
		}
	}
}

// TestHistogramPercentilesKnownDistribution observes the integers 1..10000
// exactly once each, so the true quantiles are known in closed form, and
// requires the reported percentiles to sit within the bucket quantization
// error.
func TestHistogramPercentilesKnownDistribution(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Min != 1 || s.Max != n {
		t.Errorf("min/max = %d/%d, want 1/%d", s.Min, s.Max, n)
	}
	if want := int64(n+1) / 2; math.Abs(float64(s.Mean-want)) > 1 {
		t.Errorf("mean = %d, want ≈%d", s.Mean, want)
	}
	check := func(name string, got, want int64) {
		t.Helper()
		if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.05 {
			t.Errorf("%s = %d, want %d ± 5%% (relative error %.4f)", name, got, want, rel)
		}
	}
	check("p50", s.P50, n/2)
	check("p90", s.P90, n*9/10)
	check("p99", s.P99, n*99/100)
}

// TestHistogramSkewedDistribution checks percentiles on a two-mode
// distribution: 95 fast observations and 5 slow ones per round. p50 and p90
// must report the fast mode, p99 must find the slow tail.
func TestHistogramSkewedDistribution(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		for j := 0; j < 95; j++ {
			h.Observe(100)
		}
		for j := 0; j < 5; j++ {
			h.Observe(100000)
		}
	}
	s := h.Snapshot()
	if rel := math.Abs(float64(s.P50-100)) / 100; rel > 0.05 {
		t.Errorf("p50 = %d, want ≈100", s.P50)
	}
	if rel := math.Abs(float64(s.P90-100)) / 100; rel > 0.05 {
		t.Errorf("p90 = %d, want ≈100", s.P90)
	}
	if rel := math.Abs(float64(s.P99-100000)) / 100000; rel > 0.05 {
		t.Errorf("p99 = %d, want ≈100000", s.P99)
	}
}

// TestHistogramEdgeCases: empty histograms, zero, and negative clamping.
func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 || s.Min != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
	h.Observe(0)
	h.Observe(-50) // clock skew artifact: clamped to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("zero/negative handling wrong: %+v", s)
	}
}
