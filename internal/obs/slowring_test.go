package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// traceWithDur builds a completed single-span trace whose duration is
// forced to d (the ring orders purely by DurNS, so tests pin it directly).
func traceWithDur(name string, d time.Duration) *ReqTrace {
	_, root := StartRequest(context.Background(), name, "")
	root.End()
	t := root.Trace()
	t.mu.Lock()
	t.spans[0].dur = d
	t.mu.Unlock()
	return t
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	enableForTest(t)
	r := NewSlowRing(3)
	for i := 1; i <= 10; i++ {
		r.Offer(traceWithDur(fmt.Sprintf("req%d", i), time.Duration(i)*time.Millisecond))
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(snap))
	}
	// Slowest first: 10ms, 9ms, 8ms.
	for i, want := range []time.Duration{10 * time.Millisecond, 9 * time.Millisecond, 8 * time.Millisecond} {
		if got := time.Duration(snap[i].DurNS); got != want {
			t.Errorf("entry %d: %v, want %v", i, got, want)
		}
	}
	if snap[0].Name != "req10" || snap[0].Spans == nil || snap[0].Trace == "" {
		t.Errorf("slowest entry = %+v", snap[0])
	}
}

func TestSlowRingFastEntriesRejected(t *testing.T) {
	enableForTest(t)
	r := NewSlowRing(2)
	r.Offer(traceWithDur("slow1", 100*time.Millisecond))
	r.Offer(traceWithDur("slow2", 90*time.Millisecond))
	r.Offer(traceWithDur("fast", time.Millisecond))
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "slow1" || snap[1].Name != "slow2" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSlowRingNil(t *testing.T) {
	enableForTest(t)
	if r := NewSlowRing(0); r != nil {
		t.Fatal("k=0 should disable retention")
	}
	var r *SlowRing
	r.Offer(traceWithDur("x", time.Second)) // must not panic
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Error("nil ring should be empty")
	}
	r.Offer(nil)
	NewSlowRing(4).Offer(nil) // nil trace must not panic either
}

func TestSlowRingConcurrent(t *testing.T) {
	enableForTest(t)
	r := NewSlowRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Offer(traceWithDur("req", time.Duration(g*100+i)*time.Microsecond))
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d, want 8", len(snap))
	}
	// The retained set must be the global slowest: all ≥ 792µs (the 8th
	// largest of g*100+i).
	for _, e := range snap {
		if e.DurNS < (792 * time.Microsecond).Nanoseconds() {
			t.Errorf("retained %v; a slower request was displaced", time.Duration(e.DurNS))
		}
	}
}
