package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Debug server: -obs.http :6060 exposes
//
//	/metrics          Prometheus text format (add ?format=json for JSON)
//	/debug/vars       expvar (Go runtime memstats + the obs registry)
//	/debug/pprof/     net/http/pprof profiles (heap, profile, trace, ...)
//
// The server runs for the lifetime of the command; long runs (pcause stitch
// over a large sample file, paper-scale pcexperiments) can be profiled live.

func init() {
	// Publish the registry through expvar so /debug/vars carries the same
	// numbers as /metrics. expvar.Func serializes on every scrape, so the
	// cost is paid by the scraper, never the pipeline.
	expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
}

// MetricsHandler returns the Default-registry /metrics handler so other
// servers (the pcserved API mux) can mount the same endpoint the debug
// server exposes.
func MetricsHandler() http.Handler { return http.HandlerFunc(metricsHandler) }

// metricsHandler serves the Default registry snapshot.
func metricsHandler(w http.ResponseWriter, r *http.Request) {
	snap := Default.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap.WritePrometheus(w)
}

// Server is a running debug server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// StartServer binds addr and serves the debug endpoints in a background
// goroutine. It builds its own mux rather than using http.DefaultServeMux so
// importing this package never mutates global handler state.
func StartServer(addr string) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", metricsHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	Infof("obs debug server listening", "addr", s.Addr())
	return s, nil
}
