package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the text exposition format byte for byte on a
// registry with one metric of each kind.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("stitch.verify.calls").Add(42)
	r.Gauge("stitch.clusters").Set(7)
	h := r.Histogram("fingerprint.distance.nanos")
	for i := 0; i < 100; i++ {
		h.Observe(10) // exact bucket: quantiles are exactly 10
	}
	var buf strings.Builder
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE pc_stitch_verify_calls counter
pc_stitch_verify_calls 42
# TYPE pc_stitch_clusters gauge
pc_stitch_clusters 7
# TYPE pc_fingerprint_distance_nanos summary
pc_fingerprint_distance_nanos{quantile="0.5"} 10
pc_fingerprint_distance_nanos{quantile="0.9"} 10
pc_fingerprint_distance_nanos{quantile="0.99"} 10
pc_fingerprint_distance_nanos_sum 1000
pc_fingerprint_distance_nanos_count 100
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDebugServerEndpoints starts the real server on a loopback port and
// exercises /metrics (both formats), /debug/vars, and the pprof index.
func TestDebugServerEndpoints(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	C("httptest.hits").Inc()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "pc_httptest_hits 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics?format=json"); !strings.Contains(body, `"httptest.hits": 1`) {
		t.Errorf("/metrics?format=json missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") || !strings.Contains(body, `"obs"`) {
		t.Errorf("/debug/vars missing expvar content")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}
