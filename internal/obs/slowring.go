package obs

import (
	"sync"
	"time"
)

// SlowRing keeps the K slowest completed request traces — a bounded
// in-memory ring behind /debug/slowest. Offer is O(K) with K small (the
// default is 16), and entries snapshot their span tree at admission so
// holding a ring slot never pins a live trace's mutex.

// DefaultSlowRing is the ring capacity a zero configuration selects.
const DefaultSlowRing = 16

// SlowEntry is one retained slow request.
type SlowEntry struct {
	Trace string    `json:"trace"`
	Name  string    `json:"name"`
	Start string    `json:"start"`
	DurNS int64     `json:"dur_ns"`
	Spans *SpanTree `json:"spans"`
}

// SlowRing retains the K slowest traces offered to it. A nil *SlowRing
// is valid and retains nothing.
type SlowRing struct {
	mu      sync.Mutex
	cap     int
	entries []SlowEntry // unordered; min scanned on eviction
}

// NewSlowRing returns a ring keeping the k slowest traces, or nil
// (retention off) when k <= 0.
func NewSlowRing(k int) *SlowRing {
	if k <= 0 {
		return nil
	}
	return &SlowRing{cap: k}
}

// Offer considers a completed trace for retention: admitted when the
// ring has room or the trace outlasts the current fastest entry. The
// span tree is exported before taking the ring lock (the trace is
// complete, so the tree is stable), keeping the locked section O(K).
func (r *SlowRing) Offer(t *ReqTrace) {
	if r == nil || t == nil {
		return
	}
	dur := t.DurNS()
	tree := t.Tree()
	e := SlowEntry{
		Trace: t.ID(),
		Start: t.Start().UTC().Format(time.RFC3339Nano),
		DurNS: dur,
		Spans: tree,
	}
	if tree != nil {
		e.Name = tree.Name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, e)
		return
	}
	min := 0
	for i := 1; i < len(r.entries); i++ {
		if r.entries[i].DurNS < r.entries[min].DurNS {
			min = i
		}
	}
	if dur > r.entries[min].DurNS {
		r.entries[min] = e
	}
}

// Snapshot returns the retained entries, slowest first.
func (r *SlowRing) Snapshot() []SlowEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SlowEntry, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurNS > out[j-1].DurNS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Len returns the number of retained entries.
func (r *SlowRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
