package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..15 get one exact bucket each; every
// larger value lands in one of 16 linear sub-buckets of its binary octave
// [2^e, 2^(e+1)). The worst-case relative quantization error is therefore
// 1/32 ≈ 3 %, constant across the full int64 range — the right shape for
// latencies, which span nanoseconds to seconds. The layout is HdrHistogram's
// core idea stripped to the stdlib.
const (
	histSubBuckets = 16
	histFirstExact = 16 // values below this index themselves
	histBuckets    = histFirstExact + (63-4+1)*histSubBuckets
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histFirstExact {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e ≥ 4
	sub := int(uint64(v)>>(uint(e)-4)) - histSubBuckets
	return histFirstExact + (e-4)*histSubBuckets + sub
}

// bucketMid returns a representative (midpoint) value for bucket i.
func bucketMid(i int) int64 {
	if i < histFirstExact {
		return int64(i)
	}
	i -= histFirstExact
	e := uint(i/histSubBuckets) + 4
	sub := int64(i % histSubBuckets)
	lo := (histSubBuckets + sub) << (e - 4)
	width := int64(1) << (e - 4)
	return lo + width/2
}

// Histogram records an int64 distribution (latencies in nanoseconds, sizes
// in bits) in log-scale buckets. All methods are safe for concurrent use;
// Observe is wait-free (three atomic adds plus two bounded CAS loops).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram. Prefer Registry.Histogram / H,
// which register the result under a name.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 until first observation
	return h
}

// Observe records one value. Negative values are clamped to zero: the
// histogram tracks magnitudes (durations, counts) for which a negative
// reading is a clock artifact, not data.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Time returns a stop function that observes the elapsed nanoseconds when
// called:
//
//	defer h.Time()()
func (h *Histogram) Time() func() {
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Nanoseconds()) }
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot summarizes a histogram at one instant. Quantiles carry
// the bucket quantization error (≤ ~3 % relative).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls may land
// between the per-bucket reads; the snapshot is a consistent-enough view for
// reporting, not a linearizable cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = s.Sum / s.Count
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s.P50 = quantile(&counts, total, 0.50)
	s.P90 = quantile(&counts, total, 0.90)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// quantile returns the representative value of the bucket containing the
// q-th observation (nearest-rank over bucket midpoints).
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1 // 1-based nearest rank
	cum := int64(0)
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}
