package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO engine: rolling-window service-level objectives over the serving
// endpoints. An objective declares what "good" means for one endpoint —
// a latency bound ("identify:p99<50ms" reads as "99% of identify
// requests answer within 50ms") or an error-rate bound
// ("identify:err<0.1%") — and the engine tracks, per endpoint, a ring of
// fixed-width time buckets counting total, error, and per-objective good
// events plus a log-scale latency histogram.
//
// From the ring it computes multi-window burn rates, the SRE-handbook
// measure of how fast an objective is spending its error budget:
//
//	burn(w) = badFraction(w) / (1 - target)
//
// A burn rate of 1 spends the budget exactly over the objective's
// period; 14.4 spends a 30-day budget in 2 days. Alerts pair a short and
// a long window so a burst must both spike AND sustain before paging:
// the engine reports "critical" when the fast pair (2nd window + longest
// window) both exceed BurnCritical, and "warn" when the slow pair (3rd
// window + longest) both exceed BurnWarn.

// Objective is one service-level objective.
type Objective struct {
	// Name labels the objective in reports ("identify-p99").
	Name string `json:"name"`
	// Endpoint is the RED endpoint the objective watches ("identify").
	Endpoint string `json:"endpoint"`
	// Latency, when non-zero, makes this a latency objective: a request
	// is good when it answers within this bound. Zero means an
	// availability objective: a request is good when it does not fail.
	Latency time.Duration `json:"latency_ns,omitempty"`
	// Target is the required good fraction (0,1), e.g. 0.99.
	Target float64 `json:"target"`
}

// Validate checks the objective is computable.
func (o Objective) Validate() error {
	if o.Endpoint == "" {
		return fmt.Errorf("obs: objective %q has no endpoint", o.Name)
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("obs: objective %q target %v outside (0,1)", o.Name, o.Target)
	}
	if o.Latency < 0 {
		return fmt.Errorf("obs: objective %q negative latency bound", o.Name)
	}
	return nil
}

// ParseObjectives decodes the -slo flag: comma-separated objectives,
// each "endpoint:pNN<dur" (latency) or "endpoint:err<pct%"
// (availability). Examples:
//
//	identify:p99<50ms          99% of identify requests within 50ms
//	identify-batch:p95<200ms   95% of batch requests within 200ms
//	enroll:err<0.1%            99.9% of enroll requests succeed
//
// An empty spec returns no objectives.
func ParseObjectives(spec string) ([]Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var objs []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ep, rule, ok := strings.Cut(part, ":")
		if !ok || ep == "" {
			return nil, fmt.Errorf("obs: SLO %q: want endpoint:rule", part)
		}
		kind, bound, ok := strings.Cut(rule, "<")
		if !ok {
			return nil, fmt.Errorf("obs: SLO %q: rule %q has no '<'", part, rule)
		}
		o := Objective{Endpoint: ep, Name: ep + "-" + kind}
		switch {
		case kind == "err":
			if !strings.HasSuffix(bound, "%") {
				return nil, fmt.Errorf("obs: SLO %q: error bound %q is not a percentage", part, bound)
			}
			pct, err := strconv.ParseFloat(strings.TrimSuffix(bound, "%"), 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("obs: SLO %q: error bound %q outside (0%%,100%%)", part, bound)
			}
			o.Target = 1 - pct/100
		case strings.HasPrefix(kind, "p"):
			q, err := strconv.ParseFloat(kind[1:], 64)
			if err != nil || q <= 0 || q >= 100 {
				return nil, fmt.Errorf("obs: SLO %q: percentile %q outside (0,100)", part, kind)
			}
			d, err := time.ParseDuration(bound)
			if err != nil {
				return nil, fmt.Errorf("obs: SLO %q: latency bound %q: %v", part, bound, err)
			}
			o.Target = q / 100
			o.Latency = d
		default:
			return nil, fmt.Errorf("obs: SLO %q: rule kind %q (want pNN or err)", part, kind)
		}
		if err := o.Validate(); err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
	return objs, nil
}

// Burn-rate alert thresholds (error-budget multiples).
const (
	BurnCritical = 14.4
	BurnWarn     = 6.0
)

// SLOConfig parameterizes an engine. The zero value (plus objectives) is
// a sane production configuration.
type SLOConfig struct {
	// Objectives are the objectives to track; at least one is required.
	Objectives []Objective
	// Bucket is the ring bucket width; 0 selects 10s.
	Bucket time.Duration
	// Windows are the burn-rate windows, ascending; empty selects
	// 1m, 5m, 30m, 1h. The largest window fixes the ring capacity.
	Windows []time.Duration
	// Now is the clock (test hook); nil selects time.Now.
	Now func() time.Time
}

// sloBucket is one time slot of one endpoint's ring.
type sloBucket struct {
	epoch  int64 // absolute bucket number; a stale epoch means reuse-and-reset
	total  int64
	errors int64
	good   []int64 // per objective watching this endpoint
	lat    [histBuckets]uint32
}

// sloEndpoint is the rolling state of one endpoint.
type sloEndpoint struct {
	objs []int // indices into the engine's objective list
	ring []sloBucket
}

// SLOEngine tracks objectives over rolling windows. All methods are safe
// for concurrent use. A nil *SLOEngine is valid: Observe is a no-op and
// reports are empty.
type SLOEngine struct {
	cfg     SLOConfig
	nbucket int

	mu  sync.Mutex
	eps map[string]*sloEndpoint
}

// NewSLOEngine builds an engine for the config's objectives, or nil when
// there are none.
func NewSLOEngine(cfg SLOConfig) (*SLOEngine, error) {
	if len(cfg.Objectives) == 0 {
		return nil, nil
	}
	for _, o := range cfg.Objectives {
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 10 * time.Second
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute, time.Hour}
	}
	sort.Slice(cfg.Windows, func(i, j int) bool { return cfg.Windows[i] < cfg.Windows[j] })
	if cfg.Windows[0] < cfg.Bucket {
		return nil, fmt.Errorf("obs: SLO window %v below bucket width %v", cfg.Windows[0], cfg.Bucket)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &SLOEngine{
		cfg:     cfg,
		nbucket: int(cfg.Windows[len(cfg.Windows)-1]/cfg.Bucket) + 1,
		eps:     make(map[string]*sloEndpoint),
	}
	return e, nil
}

// Objectives returns the tracked objectives.
func (e *SLOEngine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return e.cfg.Objectives
}

// endpointLocked returns (creating on first use) the endpoint state.
func (e *SLOEngine) endpointLocked(endpoint string) *sloEndpoint {
	ep := e.eps[endpoint]
	if ep == nil {
		ep = &sloEndpoint{ring: make([]sloBucket, e.nbucket)}
		for i, o := range e.cfg.Objectives {
			if o.Endpoint == endpoint {
				ep.objs = append(ep.objs, i)
			}
		}
		e.eps[endpoint] = ep
	}
	return ep
}

// bucketLocked returns the live bucket for epoch, resetting a reused
// slot.
func (e *SLOEngine) bucketLocked(ep *sloEndpoint, epoch int64) *sloBucket {
	b := &ep.ring[int(epoch%int64(e.nbucket))]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	if b.good == nil {
		b.good = make([]int64, len(ep.objs))
	}
	return b
}

// Observe records one request against the endpoint's ring. Endpoints
// without objectives are still tracked, so the report's windowed
// latency percentiles cover every observed endpoint.
func (e *SLOEngine) Observe(endpoint string, durNS int64, isErr bool) {
	if e == nil {
		return
	}
	now := e.cfg.Now()
	epoch := now.UnixNano() / int64(e.cfg.Bucket)
	e.mu.Lock()
	defer e.mu.Unlock()
	ep := e.endpointLocked(endpoint)
	b := e.bucketLocked(ep, epoch)
	b.total++
	if isErr {
		b.errors++
	}
	if durNS < 0 {
		durNS = 0
	}
	b.lat[bucketIndex(durNS)]++
	for j, oi := range ep.objs {
		o := e.cfg.Objectives[oi]
		good := !isErr
		if o.Latency > 0 {
			good = durNS <= o.Latency.Nanoseconds()
		}
		if good {
			b.good[j]++
		}
	}
}

// windowAgg is the merged state of one endpoint over one window.
type windowAgg struct {
	total, errors int64
	good          []int64
	lat           [histBuckets]int64
}

// aggregateLocked merges the ring buckets inside (epoch-n, epoch].
func (e *SLOEngine) aggregateLocked(ep *sloEndpoint, epoch int64, w time.Duration) windowAgg {
	n := int64(w / e.cfg.Bucket)
	if n < 1 {
		n = 1
	}
	agg := windowAgg{good: make([]int64, len(ep.objs))}
	for _, b := range ep.ring {
		if b.epoch <= epoch-n || b.epoch > epoch || b.total == 0 {
			continue
		}
		agg.total += b.total
		agg.errors += b.errors
		for j := range b.good {
			if j < len(agg.good) {
				agg.good[j] += b.good[j]
			}
		}
		for i, c := range b.lat {
			agg.lat[i] += int64(c)
		}
	}
	return agg
}

// SLOWindow is one burn-rate window of one objective's report.
type SLOWindow struct {
	Window   string  `json:"window"`
	Total    int64   `json:"total"`
	Bad      int64   `json:"bad"`
	SLI      float64 `json:"sli"`
	BurnRate float64 `json:"burn_rate"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// SLOObjectiveReport is one objective's multi-window report.
type SLOObjectiveReport struct {
	Name     string      `json:"name"`
	Endpoint string      `json:"endpoint"`
	Kind     string      `json:"kind"` // "latency" or "availability"
	Latency  string      `json:"latency,omitempty"`
	Target   float64     `json:"target"`
	Status   string      `json:"status"`
	Windows  []SLOWindow `json:"windows"`
}

// SLOReport is the /slo payload.
type SLOReport struct {
	TakenAt    string               `json:"taken_at"`
	Status     string               `json:"status"`
	Objectives []SLOObjectiveReport `json:"objectives"`
}

// statusRank orders ok < warn < critical.
func statusRank(s string) int {
	switch s {
	case "critical":
		return 2
	case "warn":
		return 1
	default:
		return 0
	}
}

// Report computes the multi-window burn-rate report.
func (e *SLOEngine) Report() SLOReport {
	rep := SLOReport{Status: "ok"}
	if e == nil {
		return rep
	}
	now := e.cfg.Now()
	rep.TakenAt = now.UTC().Format(time.RFC3339)
	epoch := now.UnixNano() / int64(e.cfg.Bucket)
	e.mu.Lock()
	defer e.mu.Unlock()
	for oi, o := range e.cfg.Objectives {
		or := SLOObjectiveReport{
			Name:     o.Name,
			Endpoint: o.Endpoint,
			Kind:     "availability",
			Target:   o.Target,
			Status:   "ok",
		}
		if o.Latency > 0 {
			or.Kind = "latency"
			or.Latency = o.Latency.String()
		}
		ep := e.endpointLocked(o.Endpoint)
		slot := -1
		for j, idx := range ep.objs {
			if idx == oi {
				slot = j
			}
		}
		burns := make([]float64, len(e.cfg.Windows))
		for wi, w := range e.cfg.Windows {
			agg := e.aggregateLocked(ep, epoch, w)
			win := SLOWindow{Window: w.String(), Total: agg.total, SLI: 1}
			if agg.total > 0 {
				good := agg.total - agg.errors
				if slot >= 0 {
					good = agg.good[slot]
				}
				win.Bad = agg.total - good
				win.SLI = float64(good) / float64(agg.total)
				win.BurnRate = (1 - win.SLI) / (1 - o.Target)
				win.P50MS = float64(quantile(&agg.lat, agg.total, 0.50)) / 1e6
				win.P99MS = float64(quantile(&agg.lat, agg.total, 0.99)) / 1e6
			}
			burns[wi] = win.BurnRate
			or.Windows = append(or.Windows, win)
		}
		or.Status = burnStatus(burns)
		if statusRank(or.Status) > statusRank(rep.Status) {
			rep.Status = or.Status
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	return rep
}

// burnStatus applies the paired-window alert rule to ascending-window
// burn rates: critical when a fast window and the longest window both
// burn above BurnCritical, warn when a slower window and the longest
// both burn above BurnWarn.
func burnStatus(burns []float64) string {
	if len(burns) == 0 {
		return "ok"
	}
	long := burns[len(burns)-1]
	fast := burns[0]
	if len(burns) >= 2 {
		fast = burns[1]
	}
	slow := burns[len(burns)-1]
	if len(burns) >= 3 {
		slow = burns[len(burns)-2]
	}
	switch {
	case fast > BurnCritical && long > BurnCritical:
		return "critical"
	case slow > BurnWarn && long > BurnWarn:
		return "warn"
	default:
		return "ok"
	}
}

// Status returns the engine's worst objective status ("ok", "warn", or
// "critical"). A nil engine is "ok".
func (e *SLOEngine) Status() string {
	return e.Report().Status
}

// WritePrometheus renders the report in the Prometheus text exposition
// format: per-objective burn rates, SLIs, and windowed percentiles as
// labeled gauges, plus a numeric status (0 ok, 1 warn, 2 critical).
func (rep SLOReport) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# TYPE pc_slo_status gauge\n")
	fmt.Fprintf(&b, "pc_slo_status %d\n", statusRank(rep.Status))
	b.WriteString("# TYPE pc_slo_objective_status gauge\n# TYPE pc_slo_burn_rate gauge\n# TYPE pc_slo_sli gauge\n# TYPE pc_slo_p99_ms gauge\n")
	for _, o := range rep.Objectives {
		fmt.Fprintf(&b, "pc_slo_objective_status{objective=%q} %d\n", o.Name, statusRank(o.Status))
		for _, win := range o.Windows {
			fmt.Fprintf(&b, "pc_slo_burn_rate{objective=%q,window=%q} %g\n", o.Name, win.Window, win.BurnRate)
			fmt.Fprintf(&b, "pc_slo_sli{objective=%q,window=%q} %g\n", o.Name, win.Window, win.SLI)
			fmt.Fprintf(&b, "pc_slo_p99_ms{objective=%q,window=%q} %g\n", o.Name, win.Window, win.P99MS)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
