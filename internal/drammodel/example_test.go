package drammodel_test

import (
	"fmt"

	"probablecause/internal/drammodel"
)

// Example shows the mathematical model's key invariant: the volatile set at
// higher accuracy is a strict subset of the one at lower accuracy (§7.4).
func Example() {
	m := drammodel.New(0xCAFE)
	v99, err := m.VolatileSet(0, 0.01)
	if err != nil {
		panic(err)
	}
	v90, err := m.VolatileSet(0, 0.10)
	if err != nil {
		panic(err)
	}
	fmt.Println("bits at 99% accuracy:", v99.Card())
	fmt.Println("bits at 90% accuracy:", v90.Card())
	fmt.Println("99% ⊂ 90%:", v99.IsSubset(v90))
	// Output:
	// bits at 99% accuracy: 328
	// bits at 90% accuracy: 3277
	// 99% ⊂ 90%: true
}
