package drammodel

import (
	"testing"

	"probablecause/internal/bitset"
)

func TestVolatileSetSizeTracksErrorRate(t *testing.T) {
	m := New(1)
	for _, e := range []float64{0.01, 0.05, 0.10} {
		vs, err := m.VolatileSet(0, e)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(m.PageBits)*e + 0.5)
		if vs.Card() != want {
			t.Fatalf("volatile set at e=%v has %d bits, want %d", e, vs.Card(), want)
		}
	}
}

func TestVolatileSetRejectsBadRate(t *testing.T) {
	m := New(1)
	for _, e := range []float64{0, -0.1, 1.5} {
		if _, err := m.VolatileSet(0, e); err == nil {
			t.Errorf("error rate %v accepted", e)
		}
		if _, err := m.PageErrors(0, e, 0); err == nil {
			t.Errorf("PageErrors with rate %v accepted", e)
		}
	}
}

func TestOrderOfFailureSubsetProperty(t *testing.T) {
	// Figure 10's property holds by construction in the model: the volatile
	// set at higher accuracy is a subset of the one at lower accuracy.
	m := New(2)
	v99, err := m.VolatileSet(7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	v95, err := m.VolatileSet(7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	v90, err := m.VolatileSet(7, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !v99.IsSubset(v95) || !v95.IsSubset(v90) {
		t.Fatal("subset ordering 99% ⊂ 95% ⊂ 90% violated")
	}
}

func TestPageErrorsDeterministicPerTrial(t *testing.T) {
	m := New(3)
	a, err := m.PageErrors(5, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PageErrors(5, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same (page, rate, trial) produced different errors")
	}
}

func TestTrialNoiseIsSmall(t *testing.T) {
	m := New(4)
	var sets []bitset.Sparse
	for trial := uint64(0); trial < 10; trial++ {
		s, err := m.PageErrors(0, 0.01, trial)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}
	inter := sets[0]
	union := sets[0]
	for _, s := range sets[1:] {
		inter = inter.Intersect(s)
		union = union.Union(s)
	}
	stability := float64(inter.Card()) / float64(union.Card())
	// §7.2: ≥98% of failing bits repeat; across 10 trials demand ≥90%.
	if stability < 0.90 {
		t.Fatalf("stability = %v, want ≥0.90", stability)
	}
	if inter.Card() == union.Card() {
		t.Fatal("no trial noise at all — BandSigma not taking effect")
	}
}

func TestDifferentPagesDiffer(t *testing.T) {
	m := New(5)
	a, err := m.VolatileSet(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.VolatileSet(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Expected overlap of two random 328-bit subsets of 32768: ~3 bits.
	if ic := a.IntersectCount(b); ic > a.Card()/4 {
		t.Fatalf("pages too similar: overlap %d of %d", ic, a.Card())
	}
}

func TestDifferentChipsDiffer(t *testing.T) {
	a, err := New(6).VolatileSet(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(7).VolatileSet(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ic := a.IntersectCount(b); ic > a.Card()/4 {
		t.Fatalf("chips too similar: overlap %d of %d", ic, a.Card())
	}
}

func TestChargedFractionThinsErrors(t *testing.T) {
	full := New(8)
	half := New(8)
	half.ChargedFraction = 0.5
	f, err := full.PageErrors(0, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := half.PageErrors(0, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsSubset(f) {
		t.Fatal("half-charged errors must be a subset of fully-charged errors")
	}
	ratio := float64(h.Card()) / float64(f.Card())
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("half-charged retained %v of errors, want ~0.5", ratio)
	}
}

func TestNoiseFreeModel(t *testing.T) {
	m := New(9)
	m.BandSigma = 0
	a, err := m.PageErrors(3, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PageErrors(3, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("BandSigma=0 must make trials identical")
	}
	vs, err := m.VolatileSet(3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(vs) {
		t.Fatal("noise-free trial must equal the volatile set")
	}
}

func TestSmallPageBits(t *testing.T) {
	m := New(10)
	m.PageBits = 256
	vs, err := m.VolatileSet(0, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Card() != 26 {
		t.Fatalf("Card = %d, want 26", vs.Card())
	}
	for _, p := range vs {
		if p >= 256 {
			t.Fatalf("position %d out of page", p)
		}
	}
}

func TestVolatileSetCapsAtPageSize(t *testing.T) {
	m := New(11)
	m.PageBits = 64
	m.BandSigma = 0
	vs, err := m.VolatileSet(0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Card() != 64 {
		t.Fatalf("full-rate volatile set = %d bits, want 64", vs.Card())
	}
}
