// Package drammodel implements the paper's mathematical model of approximate
// DRAM (§7.6).
//
// The end-to-end experiment needs the error behaviour of a 1 GB memory —
// eight billion cells, far beyond what the cell-level simulator (and the
// paper's 32 KB platform) can hold. The paper solves this exactly the way we
// do: it distills the platform measurements into a mathematical model and
// drives the commodity-system emulation from the model. Here the model is a
// stateless pseudo-random function: every quantity is a pure function of
// (chip seed, page, bit, trial), so a terabyte-scale memory costs nothing
// until a page is actually observed.
//
// # Model
//
// Cells of a page are ranked by volatility. The ranking is realized as a
// deterministic pseudo-random sequence of distinct bit positions keyed by
// (seed, page): position seq[0] is the page's most volatile cell, seq[1] the
// next, and so on. At an error rate e the noise-free volatile set is the
// first k = round(e·PageBits) sequence entries. This construction builds in
// the two empirical properties of §7.2 and §7.4 by design:
//
//   - consistency: the sequence is fixed per (seed, page), so error
//     locations repeat across trials up to the noise band;
//   - order of failure: the volatile set at 99 % accuracy is a subset of the
//     one at 95 %, which is a subset of the one at 90 % (Figure 10).
//
// Per-trial noise perturbs only ranks near the threshold k: rank r is
// observed failing iff r < k + σ·z(seed, page, r, trial) with z a standard
// normal PRF. σ defaults to reproduce the ~2 % unstable-bit fraction the
// platform measures at 1 % error.
package drammodel

import (
	"fmt"
	"math"

	"probablecause/internal/bitset"
	"probablecause/internal/dist"
	"probablecause/internal/dram"
	"probablecause/internal/prng"
)

// Model is the mathematical model of one approximate-DRAM system.
type Model struct {
	// Seed identifies the chip: two models with different seeds are
	// different physical devices.
	Seed uint64
	// PageBits is the page size in bits; defaults to dram.PageBits.
	PageBits int
	// BandSigma is the rank-jitter standard deviation (in ranks) of the
	// per-trial noise band. Zero disables noise.
	BandSigma float64
	// ChargedFraction is the probability that a volatile cell holds
	// non-default data in a given output and therefore can expose its error
	// (a cell storing its default value cannot decay visibly). 1.0 models
	// the worst-case patterns used for characterization; ~0.5 models
	// arbitrary application data. Defaults to 1.0.
	ChargedFraction float64
}

// New returns a model with the paper-calibrated defaults.
func New(seed uint64) *Model {
	return &Model{Seed: seed, PageBits: dram.PageBits, BandSigma: 1.5, ChargedFraction: 1}
}

func (m *Model) pageBits() int {
	if m.PageBits > 0 {
		return m.PageBits
	}
	return dram.PageBits
}

func (m *Model) chargedFraction() float64 {
	if m.ChargedFraction == 0 {
		return 1
	}
	return m.ChargedFraction
}

// volatilityOrder returns the first n entries of the page's volatility
// sequence: distinct bit positions, most volatile first.
func (m *Model) volatilityOrder(page uint64, n int) []uint32 {
	bits := m.pageBits()
	if n > bits {
		n = bits
	}
	rng := prng.New(prng.Hash(m.Seed, page, 0x5E90))
	seq := make([]uint32, 0, n)
	seen := make(map[uint32]struct{}, n)
	for len(seq) < n {
		p := uint32(rng.Intn(bits))
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		seq = append(seq, p)
	}
	return seq
}

// VolatileSet returns the noise-free volatile set of a page at the given
// error rate: the bit positions that fail every trial (the page's true
// fingerprint). errRate must be in (0, 1].
func (m *Model) VolatileSet(page uint64, errRate float64) (bitset.Sparse, error) {
	k, err := m.threshold(errRate)
	if err != nil {
		return nil, err
	}
	return bitset.NewSparse(m.volatilityOrder(page, k)), nil
}

func (m *Model) threshold(errRate float64) (int, error) {
	if errRate <= 0 || errRate > 1 {
		return 0, fmt.Errorf("drammodel: error rate %v outside (0, 1]", errRate)
	}
	k := int(float64(m.pageBits())*errRate + 0.5)
	if k < 1 {
		k = 1
	}
	return k, nil
}

// PageErrors returns the observed error positions of one page in one
// approximate output ("trial"). Distinct trials re-roll the noise band and
// the charged mask but share the underlying volatility order.
func (m *Model) PageErrors(page uint64, errRate float64, trial uint64) (bitset.Sparse, error) {
	k, err := m.threshold(errRate)
	if err != nil {
		return nil, err
	}
	// Ranks within ±6σ of the threshold are undecided until the per-trial
	// jitter is drawn; everything below always fails, everything above never
	// does.
	band := int(math.Ceil(6 * m.BandSigma))
	seq := m.volatilityOrder(page, k+band)
	cf := m.chargedFraction()
	out := make([]uint32, 0, k)
	for r, pos := range seq {
		fails := false
		switch {
		case r < k-band:
			fails = true
		default:
			z := stdNormalPRF(prng.Hash(m.Seed, page, uint64(pos), trial, 0x0153))
			fails = float64(r) < float64(k)+m.BandSigma*z
		}
		if !fails {
			continue
		}
		if cf < 1 {
			u := prng.Uniform01(prng.Hash(m.Seed, page, uint64(pos), trial, 0xC4A6))
			if u >= cf {
				continue
			}
		}
		out = append(out, pos)
	}
	return bitset.NewSparse(out), nil
}

func stdNormalPRF(h uint64) float64 {
	u := prng.Uniform01(h)
	if u < 1e-12 {
		u = 1e-12
	}
	if u > 1-1e-12 {
		u = 1 - 1e-12
	}
	return dist.StdNormalQuantile(u)
}
