// Package samplefile defines the on-disk interchange format for captured
// approximate outputs ("samples") used by the pcause CLI.
//
// A sample file is JSON-lines: each line is one sample, encoded as an array
// of pages, each page an array of ascending error bit positions:
//
//	[[12,845,3001],[77,1009],[...]]
//
// The format is deliberately trivial — it is what a scraper that extracts
// error patterns from published outputs would emit — while staying
// streamable (the stitcher handles samples one line at a time).
//
// Because the producer is a scraper, the input is hostile by default:
// truncated lines, non-JSON garbage, and wrong-shape JSON all occur in
// practice (and are generated deliberately by internal/faults for chaos
// testing). The Reader therefore has two modes. In strict mode (the
// default) the first malformed line fails the stream with its line number.
// In lenient mode malformed lines are skipped and counted — one bad line
// in a million-sample capture must not abort an identification run — while
// I/O errors from the underlying stream still fail immediately: those are
// environmental (and possibly transient), not data, and skipping them
// would silently drop well-formed samples.
package samplefile

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"probablecause/internal/bitset"
	"probablecause/internal/obs"
	"probablecause/internal/stitch"
)

// Ingestion metrics: total lines parsed and malformed lines skipped in
// lenient mode. The chaos suite asserts skipped == injected corruptions.
var (
	cLines   = obs.C("samplefile.lines")
	cSkipped = obs.C("samplefile.lines.skipped")
)

// MaxLineBytes is the largest accepted encoded sample line (a 10 MB sample
// at 1% error encodes to roughly 2 MB of JSON, so 64 MiB is generous).
const MaxLineBytes = 64 << 20

// maxLineBytes is the limit the reader actually applies; tests shrink it so
// exercising the over-long-line path doesn't require a 64 MiB allocation.
var maxLineBytes = MaxLineBytes

// Write serializes samples as JSON lines.
func Write(w io.Writer, samples []stitch.Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, s := range samples {
		pages := make([][]uint32, len(s.Pages))
		for j, p := range s.Pages {
			if p == nil {
				pages[j] = []uint32{}
			} else {
				pages[j] = p
			}
		}
		if err := enc.Encode(pages); err != nil {
			return fmt.Errorf("samplefile: sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Reader streams samples from a JSON-lines source.
type Reader struct {
	scan    *bufio.Scanner
	line    int
	lenient bool
	skipped int
}

// NewReader wraps r in a strict-mode reader. Lines up to MaxLineBytes are
// accepted.
func NewReader(r io.Reader) *Reader {
	scan := bufio.NewScanner(r)
	initial := 1 << 20
	if initial > maxLineBytes {
		// The scanner's effective limit is max(cap(buf), maxLineBytes).
		initial = maxLineBytes
	}
	scan.Buffer(make([]byte, 0, initial), maxLineBytes)
	return &Reader{scan: scan}
}

// SetLenient switches malformed-line handling: in lenient mode Next skips
// and counts lines that fail to parse instead of returning their error.
// Stream-level I/O failures (including over-long lines) still fail the
// read in either mode.
func (r *Reader) SetLenient(on bool) { r.lenient = on }

// Skipped returns how many malformed lines have been skipped in lenient
// mode.
func (r *Reader) Skipped() int { return r.skipped }

// Line returns the 1-based number of the last line consumed — context for
// error reporting by callers that wrap Next.
func (r *Reader) Line() int { return r.line }

// Next returns the next sample, or io.EOF when the stream ends.
func (r *Reader) Next() (stitch.Sample, error) {
	for r.scan.Scan() {
		r.line++
		raw := r.scan.Bytes()
		if len(raw) == 0 {
			continue
		}
		if obs.On() {
			cLines.Inc()
		}
		s, err := parseSample(raw)
		if err == nil {
			return s, nil
		}
		if r.lenient {
			r.skipped++
			if obs.On() {
				cSkipped.Inc()
				obs.Debugf("samplefile: skipping malformed line", "line", r.line, "err", err)
			}
			continue
		}
		return stitch.Sample{}, fmt.Errorf("samplefile: line %d: %w", r.line, err)
	}
	if err := r.scan.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return stitch.Sample{}, fmt.Errorf(
				"samplefile: line %d: line exceeds the %d MiB sample limit (%w); the capture is corrupt or not a JSON-lines sample file",
				r.line+1, maxLineBytes>>20, err)
		}
		return stitch.Sample{}, fmt.Errorf("samplefile: line %d: reading stream: %w", r.line+1, err)
	}
	return stitch.Sample{}, io.EOF
}

// parseSample decodes one non-empty line. Parse failures describe the line
// content shape, not just the json error, so a strict-mode failure in a
// gigabyte capture is diagnosable from the message alone.
func parseSample(raw []byte) (stitch.Sample, error) {
	var pages [][]uint32
	if err := json.Unmarshal(raw, &pages); err != nil {
		return stitch.Sample{}, fmt.Errorf("malformed sample (%d bytes): %w", len(raw), err)
	}
	if len(pages) == 0 {
		return stitch.Sample{}, fmt.Errorf("empty sample")
	}
	s := stitch.Sample{Pages: make([]bitset.Sparse, len(pages))}
	for j, p := range pages {
		s.Pages[j] = bitset.NewSparse(p)
	}
	return s, nil
}

// ReadAll drains the stream in strict mode.
func ReadAll(rd io.Reader) ([]stitch.Sample, error) {
	samples, _, err := readAll(rd, false)
	return samples, err
}

// ReadAllLenient drains the stream in lenient mode, returning the samples
// recovered and the number of malformed lines skipped.
func ReadAllLenient(rd io.Reader) (samples []stitch.Sample, skipped int, err error) {
	return readAll(rd, true)
}

func readAll(rd io.Reader, lenient bool) ([]stitch.Sample, int, error) {
	r := NewReader(rd)
	r.SetLenient(lenient)
	var out []stitch.Sample
	for {
		s, err := r.Next()
		if err == io.EOF {
			return out, r.Skipped(), nil
		}
		if err != nil {
			return nil, r.Skipped(), err
		}
		out = append(out, s)
	}
}
