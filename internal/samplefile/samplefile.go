// Package samplefile defines the on-disk interchange format for captured
// approximate outputs ("samples") used by the pcause CLI.
//
// A sample file is JSON-lines: each line is one sample, encoded as an array
// of pages, each page an array of ascending error bit positions:
//
//	[[12,845,3001],[77,1009],[...]]
//
// The format is deliberately trivial — it is what a scraper that extracts
// error patterns from published outputs would emit — while staying
// streamable (the stitcher handles samples one line at a time).
package samplefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"probablecause/internal/bitset"
	"probablecause/internal/stitch"
)

// Write serializes samples as JSON lines.
func Write(w io.Writer, samples []stitch.Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, s := range samples {
		pages := make([][]uint32, len(s.Pages))
		for j, p := range s.Pages {
			if p == nil {
				pages[j] = []uint32{}
			} else {
				pages[j] = p
			}
		}
		if err := enc.Encode(pages); err != nil {
			return fmt.Errorf("samplefile: sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Reader streams samples from a JSON-lines source.
type Reader struct {
	scan *bufio.Scanner
	line int
}

// NewReader wraps r. Lines up to 64 MiB are accepted (a 10 MB sample at 1 %
// error encodes to roughly 2 MB of JSON).
func NewReader(r io.Reader) *Reader {
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 1<<20), 64<<20)
	return &Reader{scan: scan}
}

// Next returns the next sample, or io.EOF when the stream ends.
func (r *Reader) Next() (stitch.Sample, error) {
	for r.scan.Scan() {
		r.line++
		raw := r.scan.Bytes()
		if len(raw) == 0 {
			continue
		}
		var pages [][]uint32
		if err := json.Unmarshal(raw, &pages); err != nil {
			return stitch.Sample{}, fmt.Errorf("samplefile: line %d: %w", r.line, err)
		}
		if len(pages) == 0 {
			return stitch.Sample{}, fmt.Errorf("samplefile: line %d: empty sample", r.line)
		}
		s := stitch.Sample{Pages: make([]bitset.Sparse, len(pages))}
		for j, p := range pages {
			s.Pages[j] = bitset.NewSparse(p)
		}
		return s, nil
	}
	if err := r.scan.Err(); err != nil {
		return stitch.Sample{}, err
	}
	return stitch.Sample{}, io.EOF
}

// ReadAll drains the stream.
func ReadAll(rd io.Reader) ([]stitch.Sample, error) {
	r := NewReader(rd)
	var out []stitch.Sample
	for {
		s, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}
