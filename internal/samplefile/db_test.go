package samplefile

import (
	"os"
	"path/filepath"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
)

func snapshotFixture() *fingerprint.DB {
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i, name := range []string{"alpha", "beta", "gamma"} {
		fp := bitset.New(512)
		for j := 0; j < 16; j++ {
			fp.Set((i*131 + j*29) % 512)
		}
		db.Add(name, fp)
	}
	return db
}

// TestSaveLoadDB round-trips a snapshot through disk.
func TestSaveLoadDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.pcdb")
	want := snapshotFixture()
	if err := SaveDB(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("loaded %d entries, want %d", got.Len(), want.Len())
	}
	for i, e := range want.Entries() {
		g := got.Entries()[i]
		if g.Name != e.Name || !g.FP.Equal(e.FP) {
			t.Fatalf("entry %d: loaded %q, want %q", i, g.Name, e.Name)
		}
	}
	// No temp files left behind.
	dirents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot", len(dirents))
	}
}

// TestSaveDBAtomic makes a failed save leave the existing snapshot alone.
func TestSaveDBAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.pcdb")
	if err := SaveDB(path, snapshotFixture()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Saving into a nonexistent directory fails before touching path.
	if err := SaveDB(filepath.Join(filepath.Dir(path), "missing", "snap.pcdb"), snapshotFixture()); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save disturbed the existing snapshot")
	}
}

// TestLoadDBErrors covers the failure messages.
func TestLoadDBErrors(t *testing.T) {
	if _, err := LoadDB(filepath.Join(t.TempDir(), "absent.pcdb")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.pcdb")
	if err := os.WriteFile(bad, []byte("not a pcdb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(bad); err == nil {
		t.Fatal("loading garbage succeeded")
	}
}
