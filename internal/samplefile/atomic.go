package samplefile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Atomic-write discipline shared by every durable artifact in the repo:
// snapshots (SaveDB), checkpoint markers (SaveCheckpoint), and the tiered
// store's segment files and manifest (internal/store). The bytes land in a
// temporary file in the target's directory, are fsynced, and rename into
// place — a crash at any step leaves the previous file fully intact, never a
// truncated one. Callers that need the rename itself to survive a crash
// follow up with SyncDir on the parent directory.

// WriteAtomic streams write's output into path atomically. On any error the
// temporary file is removed and path is untouched.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("samplefile: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("samplefile: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("samplefile: closing %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("samplefile: installing %s: %w", path, err)
	}
	return nil
}

// WriteFileAtomic writes blob to path atomically; see WriteAtomic.
func WriteFileAtomic(path string, blob []byte) error {
	return WriteAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(blob); err != nil {
			return fmt.Errorf("samplefile: writing %s: %w", path, err)
		}
		return nil
	})
}

// SyncDir fsyncs a directory so renames within it survive a crash.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("samplefile: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("samplefile: syncing directory: %w", err)
	}
	return nil
}
