package samplefile

import (
	"fmt"
	"os"
	"path/filepath"

	"probablecause/internal/fingerprint"
)

// LoadDB reads a PCDB01 fingerprint database from path.
func LoadDB(path string) (*fingerprint.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: opening database: %w", err)
	}
	defer f.Close()
	db, err := fingerprint.ReadDB(f)
	if err != nil {
		return nil, fmt.Errorf("samplefile: reading database %s: %w", path, err)
	}
	return db, nil
}

// SaveDB writes the database to path atomically: the bytes land in a
// temporary file in the same directory, are fsynced, and rename into place —
// a crash mid-write leaves the previous snapshot intact, never a truncated
// one. This is the snapshot path pcserved saves through on shutdown.
func SaveDB(path string, db *fingerprint.DB) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("samplefile: creating snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = db.WriteTo(tmp); err != nil {
		return fmt.Errorf("samplefile: writing snapshot: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("samplefile: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("samplefile: closing snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("samplefile: installing snapshot: %w", err)
	}
	return nil
}
