package samplefile

import (
	"fmt"
	"io"
	"os"

	"probablecause/internal/fingerprint"
)

// LoadDB reads a PCDB01 fingerprint database from path.
func LoadDB(path string) (*fingerprint.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("samplefile: opening database: %w", err)
	}
	defer f.Close()
	db, err := fingerprint.ReadDB(f)
	if err != nil {
		return nil, fmt.Errorf("samplefile: reading database %s: %w", path, err)
	}
	return db, nil
}

// SaveDB writes the database to path atomically (WriteAtomic's
// temp-fsync-rename discipline) — a crash mid-write leaves the previous
// snapshot intact, never a truncated one. This is the snapshot path pcserved
// saves through on shutdown.
func SaveDB(path string, db *fingerprint.DB) error {
	return WriteAtomic(path, func(w io.Writer) error {
		if _, err := db.WriteTo(w); err != nil {
			return fmt.Errorf("samplefile: writing snapshot: %w", err)
		}
		return nil
	})
}
