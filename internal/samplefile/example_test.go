package samplefile_test

import (
	"bytes"
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/samplefile"
	"probablecause/internal/stitch"
)

// Example round-trips a captured output through the JSON-lines format.
func Example() {
	sample := stitch.Sample{Pages: []bitset.Sparse{{12, 845, 3001}, {77}}}
	var buf bytes.Buffer
	if err := samplefile.Write(&buf, []stitch.Sample{sample}); err != nil {
		panic(err)
	}
	fmt.Print(buf.String())
	back, err := samplefile.ReadAll(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("pages:", len(back[0].Pages))
	// Output:
	// [[12,845,3001],[77]]
	// pages: 2
}
