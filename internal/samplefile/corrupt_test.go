package samplefile

import (
	"bufio"
	"errors"
	"io"
	"strings"
	"testing"

	"probablecause/internal/faults"
)

// The corrupted-sample fault corpus: every malformed shape the chaos plan
// (internal/faults) injects, plus the pathological ones it cannot (an
// oversized line). Each case says what strict mode must do and whether
// lenient mode can still make progress past it.
var corruptCases = []struct {
	name  string
	input string
	// wantStrict is a substring of the strict-mode error; "" means the
	// input parses cleanly.
	wantStrict string
	// wantSamples is how many samples lenient mode recovers.
	wantSamples int
	// wantSkipped is how many lines lenient mode skips.
	wantSkipped int
}{
	{
		name:        "well-formed",
		input:       "[[1,2,3],[4]]\n[[5]]\n",
		wantStrict:  "",
		wantSamples: 2,
	},
	{
		name:        "truncated line",
		input:       "[[1,2,3],[4]]\n[[5,6],[7\n[[8]]\n",
		wantStrict:  "line 2",
		wantSamples: 2,
		wantSkipped: 1,
	},
	{
		name:        "non-array JSON",
		input:       "{\"pages\":\"corrupt\"}\n[[9]]\n",
		wantStrict:  "line 1",
		wantSamples: 1,
		wantSkipped: 1,
	},
	{
		name:        "garbage bytes",
		input:       "[[1]]\n\xff\x80\xfe garbage\n[[2]]\n",
		wantStrict:  "line 2",
		wantSamples: 2,
		wantSkipped: 1,
	},
	{
		name: "out-of-order bit positions",
		// Positions are normalized (sorted, deduplicated) on ingest, per
		// the format's fuzz invariant — disorder is repaired, not rejected.
		input:       "[[9,1,5,1]]\n",
		wantStrict:  "",
		wantSamples: 1,
	},
	{
		name:        "empty sample line",
		input:       "[[1]]\n[]\n[[2]]\n",
		wantStrict:  "empty sample",
		wantSamples: 2,
		wantSkipped: 1,
	},
	{
		name:        "every line corrupt",
		input:       "nope\n{\"a\":1}\n[[\n",
		wantStrict:  "line 1",
		wantSamples: 0,
		wantSkipped: 3,
	},
}

func TestCorruptCorpusStrictAndLenient(t *testing.T) {
	for _, tc := range corruptCases {
		t.Run(tc.name, func(t *testing.T) {
			// Strict mode: fail on the first malformed line, with its
			// number in the message.
			_, err := ReadAll(strings.NewReader(tc.input))
			if tc.wantStrict == "" {
				if err != nil {
					t.Fatalf("strict: unexpected error %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantStrict) {
				t.Fatalf("strict: error %v does not mention %q", err, tc.wantStrict)
			}

			// Lenient mode: recover every well-formed line, count skips.
			samples, skipped, err := ReadAllLenient(strings.NewReader(tc.input))
			if err != nil {
				t.Fatalf("lenient: %v", err)
			}
			if len(samples) != tc.wantSamples || skipped != tc.wantSkipped {
				t.Fatalf("lenient: %d samples, %d skipped; want %d, %d",
					len(samples), skipped, tc.wantSamples, tc.wantSkipped)
			}
		})
	}
}

func TestOversizedLineReportsLimitAndLineNumber(t *testing.T) {
	// An over-long line is a stream-level failure in both modes: the
	// scanner cannot resynchronize past it, so "skipping" it would
	// silently drop the rest of the capture. Shrink the limit so the test
	// doesn't have to materialize a 64 MiB line.
	defer func(old int) { maxLineBytes = old }(maxLineBytes)
	maxLineBytes = 1 << 16
	huge := "[[1]]\n[" + strings.Repeat("1,", maxLineBytes/2) + "1]\n"
	for _, lenient := range []bool{false, true} {
		r := NewReader(strings.NewReader(huge))
		r.SetLenient(lenient)
		if _, err := r.Next(); err != nil {
			t.Fatalf("lenient=%v: first sample: %v", lenient, err)
		}
		_, err := r.Next()
		if err == nil || err == io.EOF {
			t.Fatalf("lenient=%v: oversized line accepted", lenient)
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("lenient=%v: error %v does not wrap bufio.ErrTooLong", lenient, err)
		}
		for _, want := range []string{"line 2", "MiB"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("lenient=%v: error %q does not mention %q", lenient, err, want)
			}
		}
	}
}

func TestScannerIOErrorsCarryLineContextAndTransience(t *testing.T) {
	// A transient I/O fault from the underlying stream must surface with
	// line context and keep its transient classification through the
	// wrapping, so the runner's retry policy still recognizes it.
	in := faults.NewInjector(faults.Plan{Seed: 7, ReadErr: 1})
	r := NewReader(in.Reader(strings.NewReader("[[1,2]]\n")))
	_, err := r.Next()
	if err == nil || err == io.EOF {
		t.Fatal("injected read error lost")
	}
	if !faults.IsTransient(err) {
		t.Fatalf("transient classification lost: %v", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error %q lacks line context", err)
	}
	// Lenient mode must NOT swallow stream errors.
	r2 := NewReader(in.Reader(strings.NewReader("[[1,2]]\n")))
	r2.SetLenient(true)
	if _, err := r2.Next(); err == nil || err == io.EOF {
		t.Fatal("lenient mode swallowed an I/O error")
	}
}

func TestLenientRecoversAroundFaultInjectedCorruption(t *testing.T) {
	// End-to-end over the fault injector: corrupt a 200-line document at a
	// fixed seed and verify lenient ingestion recovers exactly the
	// untouched lines.
	var doc strings.Builder
	for i := 0; i < 200; i++ {
		doc.WriteString("[[1,2,3],[4,5],[6]]\n")
	}
	in := faults.NewInjector(faults.Plan{Seed: 0xC0DE, Line: 0.15})
	corrupted, n := in.CorruptJSONLines([]byte(doc.String()))
	if n == 0 || n == 200 {
		t.Fatalf("fault plan corrupted %d of 200 lines; matrix not exercised", n)
	}
	samples, skipped, err := ReadAllLenient(strings.NewReader(string(corrupted)))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != n || len(samples) != 200-n {
		t.Fatalf("recovered %d samples with %d skips; want %d and %d",
			len(samples), skipped, 200-n, n)
	}
}
