package samplefile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"probablecause/internal/fingerprint"
)

// CheckpointMarker is the commit file of a checkpoint directory.
const CheckpointMarker = "CHECKPOINT"

// CheckpointMeta is the durable metadata committed alongside a database
// snapshot. Watermark is the WAL sequence number of the first record NOT
// reflected in the snapshot: replay resumes there, and recovery
// suppresses re-promotion of enrollments that converged below it —
// without the watermark, every snapshot-then-replay would double-apply
// the enrollments the snapshot already holds (the bug the regression
// test in internal/server pins).
type CheckpointMeta struct {
	// DBFile is the snapshot's filename within the checkpoint directory.
	DBFile string `json:"db_file"`
	// Watermark is the WAL sequence number of the first unapplied record.
	Watermark uint64 `json:"wal_watermark"`
	// Entries is the snapshot's entry count (operator visibility only).
	Entries int `json:"entries"`
}

// SaveCheckpoint atomically persists db plus its WAL watermark into dir.
// The database lands first (SaveDB's temp-fsync-rename discipline, under
// a watermark-stamped name), then the CHECKPOINT marker renames into
// place — the marker is the commit point, so a crash at any step leaves
// the previous checkpoint fully intact, never a database paired with the
// wrong watermark. Superseded snapshot files are removed best-effort
// after the commit.
func SaveCheckpoint(dir string, db *fingerprint.DB, watermark uint64) (err error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("samplefile: creating checkpoint directory: %w", err)
	}
	meta := CheckpointMeta{
		DBFile:    fmt.Sprintf("checkpoint-%020d.pcdb", watermark),
		Watermark: watermark,
		Entries:   db.Len(),
	}
	if err := SaveDB(filepath.Join(dir, meta.DBFile), db); err != nil {
		return err
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("samplefile: encoding checkpoint meta: %w", err)
	}
	if err = WriteFileAtomic(filepath.Join(dir, CheckpointMarker), append(blob, '\n')); err != nil {
		return fmt.Errorf("samplefile: committing checkpoint: %w", err)
	}
	if err = SyncDir(dir); err != nil {
		return err
	}
	sweepStaleCheckpoints(dir, meta.DBFile)
	return nil
}

// LoadCheckpoint reads the committed checkpoint from dir. ok is false
// (with a nil error) when no checkpoint has ever been committed there.
func LoadCheckpoint(dir string) (db *fingerprint.DB, meta CheckpointMeta, ok bool, err error) {
	blob, err := os.ReadFile(filepath.Join(dir, CheckpointMarker))
	if errors.Is(err, os.ErrNotExist) {
		return nil, CheckpointMeta{}, false, nil
	}
	if err != nil {
		return nil, CheckpointMeta{}, false, fmt.Errorf("samplefile: reading checkpoint marker: %w", err)
	}
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, CheckpointMeta{}, false, fmt.Errorf("samplefile: decoding checkpoint marker: %w", err)
	}
	if meta.DBFile == "" || meta.DBFile != filepath.Base(meta.DBFile) {
		return nil, CheckpointMeta{}, false, fmt.Errorf("samplefile: checkpoint marker names invalid database file %q", meta.DBFile)
	}
	db, err = LoadDB(filepath.Join(dir, meta.DBFile))
	if err != nil {
		return nil, CheckpointMeta{}, false, err
	}
	return db, meta, true, nil
}

// sweepStaleCheckpoints removes snapshot files superseded by the live
// one. Best effort: a leftover file costs disk, not correctness.
func sweepStaleCheckpoints(dir, live string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		name := de.Name()
		if name == live || de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".pcdb") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

