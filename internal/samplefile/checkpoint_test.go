package samplefile

import (
	"os"
	"path/filepath"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
)

func ckptDB(t *testing.T, names ...string) *fingerprint.DB {
	t.Helper()
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i, name := range names {
		fp := bitset.New(256)
		for j := 0; j < 8; j++ {
			fp.Set((i*37 + j*11) % 256)
		}
		db.Add(name, fp)
	}
	return db
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := LoadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	db := ckptDB(t, "a", "b", "c")
	if err := SaveCheckpoint(dir, db, 42); err != nil {
		t.Fatal(err)
	}
	got, meta, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if meta.Watermark != 42 || meta.Entries != 3 {
		t.Fatalf("meta %+v", meta)
	}
	if got.Len() != 3 {
		t.Fatalf("entries %d", got.Len())
	}
	for _, name := range []string{"a", "b", "c"} {
		w, _ := db.Get(name)
		g, ok := got.Get(name)
		if !ok || !g.Equal(w) {
			t.Fatalf("entry %s lost or changed", name)
		}
	}
}

// TestCheckpointSupersede: a newer checkpoint replaces the old one
// atomically and sweeps the stale snapshot file.
func TestCheckpointSupersede(t *testing.T) {
	dir := t.TempDir()
	if err := SaveCheckpoint(dir, ckptDB(t, "old"), 10); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(dir, ckptDB(t, "new1", "new2"), 99); err != nil {
		t.Fatal(err)
	}
	got, meta, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if meta.Watermark != 99 || got.Len() != 2 {
		t.Fatalf("loaded stale checkpoint: %+v len %d", meta, got.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint-00000000000000000010.pcdb")); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot not swept: %v", err)
	}
}

// TestCheckpointCrashBeforeCommit: a database file written without its
// marker rename (crash between the two steps) must be invisible — the
// previous checkpoint, or none, still rules.
func TestCheckpointCrashBeforeCommit(t *testing.T) {
	dir := t.TempDir()
	if err := SaveCheckpoint(dir, ckptDB(t, "committed"), 7); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a newer snapshot file exists, marker untouched.
	if err := SaveDB(filepath.Join(dir, "checkpoint-00000000000000000050.pcdb"), ckptDB(t, "torn1", "torn2")); err != nil {
		t.Fatal(err)
	}
	got, meta, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if meta.Watermark != 7 || got.Len() != 1 {
		t.Fatalf("uncommitted checkpoint became visible: %+v", meta)
	}
	if _, ok := got.Get("committed"); !ok {
		t.Fatal("committed entry lost")
	}
}

func TestCheckpointRejectsBadMarker(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, CheckpointMarker), []byte(`{"db_file":"../evil.pcdb","wal_watermark":1}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadCheckpoint(dir); err == nil {
		t.Fatal("path-escaping db_file accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, CheckpointMarker), []byte("not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadCheckpoint(dir); err == nil {
		t.Fatal("garbage marker accepted")
	}
}
