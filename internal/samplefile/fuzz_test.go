package samplefile

import (
	"io"
	"strings"
	"testing"
)

// FuzzReader: the JSON-lines sample parser must never panic, and every
// sample it accepts must contain normalized (sorted, deduplicated) pages.
func FuzzReader(f *testing.F) {
	f.Add("[[1,2,3]]\n")
	f.Add("[[9,1,5,1],[7]]\n\n[[2]]\n")
	f.Add("not json\n")
	f.Add("[]\n")
	f.Add("[[]]")
	f.Fuzz(func(t *testing.T, data string) {
		r := NewReader(strings.NewReader(data))
		for {
			s, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input rejected: fine
			}
			if len(s.Pages) == 0 {
				t.Fatal("accepted empty sample")
			}
			for _, p := range s.Pages {
				for i := 1; i < len(p); i++ {
					if p[i] <= p[i-1] {
						t.Fatal("page positions not normalized")
					}
				}
			}
		}
	})
}
