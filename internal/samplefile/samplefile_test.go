package samplefile

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/stitch"
)

func TestRoundTrip(t *testing.T) {
	in := []stitch.Sample{
		{Pages: []bitset.Sparse{{1, 5, 9}, {2}}},
		{Pages: []bitset.Sparse{nil, {100, 200, 4000000000}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d samples", len(out))
	}
	if !out[0].Pages[0].Equal(bitset.Sparse{1, 5, 9}) {
		t.Fatalf("page = %v", out[0].Pages[0])
	}
	if out[1].Pages[0].Card() != 0 {
		t.Fatalf("nil page round-tripped to %v", out[1].Pages[0])
	}
	if !out[1].Pages[1].Equal(bitset.Sparse{100, 200, 4000000000}) {
		t.Fatalf("page = %v", out[1].Pages[1])
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	src := "[[1,2]]\n\n[[3]]\n"
	out, err := ReadAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d samples", len(out))
	}
}

func TestReaderRejectsBadJSON(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadAll(strings.NewReader("[]\n")); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestReaderNormalizesUnsortedPositions(t *testing.T) {
	out, err := ReadAll(strings.NewReader("[[9,1,5,1]]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Pages[0].Equal(bitset.Sparse{1, 5, 9}) {
		t.Fatalf("positions = %v", out[0].Pages[0])
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestStreamingReader(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []stitch.Sample{
		{Pages: []bitset.Sparse{{1}}},
		{Pages: []bitset.Sparse{{2}}},
	}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	s1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Pages[0].Equal(bitset.Sparse{1}) {
		t.Fatalf("first sample %v", s1.Pages[0])
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}
