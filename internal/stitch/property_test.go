package stitch

import (
	"testing"
	"testing/quick"

	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
	"probablecause/internal/prng"
)

// buildSamples materializes noise-free samples at the given start pages.
func buildSamples(t testing.TB, model *drammodel.Model, starts []int, width int) []Sample {
	t.Helper()
	out := make([]Sample, len(starts))
	for k, start := range starts {
		pages := make([]bitset.Sparse, width)
		for i := range pages {
			fp, err := model.PageErrors(uint64(start+i), 0.01, uint64(k))
			if err != nil {
				t.Fatal(err)
			}
			pages[i] = fp
		}
		out[k] = Sample{Pages: pages}
	}
	return out
}

// Property: with noise-free fingerprints, the final cluster count does not
// depend on the order samples arrive — stitching is a pure connectivity
// computation.
func TestQuickOrderInvariance(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%12) + 2
		model := drammodel.New(seed)
		model.BandSigma = 0
		rng := prng.New(seed ^ 0x0D3)
		starts := make([]int, count)
		for i := range starts {
			starts[i] = rng.Intn(120)
		}
		samples := buildSamples(t, model, starts, 6)

		run := func(order []int) int {
			st, err := New(Config{})
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range order {
				if _, err := st.Add(samples[idx]); err != nil {
					t.Fatal(err)
				}
			}
			return st.Count()
		}
		forward := make([]int, count)
		shuffled := make([]int, count)
		for i := range forward {
			forward[i] = i
			shuffled[i] = i
		}
		rng.Shuffle(count, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return run(forward) == run(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a sample can only decrease the cluster count by merging
// or increase it by exactly one.
func TestQuickClusterCountDelta(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%15) + 2
		model := drammodel.New(seed)
		rng := prng.New(seed ^ 0x77)
		starts := make([]int, count)
		for i := range starts {
			starts[i] = rng.Intn(100)
		}
		samples := buildSamples(t, model, starts, 5)
		st, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for _, s := range samples {
			if _, err := st.Add(s); err != nil {
				t.Fatal(err)
			}
			now := st.Count()
			if now > prev+1 || now < 1 {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: CoveredPages never exceeds the page span actually touched and
// never shrinks as samples accumulate.
func TestQuickCoverageMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%10) + 2
		model := drammodel.New(seed)
		rng := prng.New(seed ^ 0x99)
		st, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		touched := map[int]bool{}
		prevCovered := 0
		for k := 0; k < count; k++ {
			start := rng.Intn(80)
			samples := buildSamples(t, model, []int{start}, 4)
			for i := 0; i < 4; i++ {
				touched[start+i] = true
			}
			if _, err := st.Add(samples[0]); err != nil {
				t.Fatal(err)
			}
			c := st.CoveredPages()
			if c < prevCovered || c > len(touched) {
				return false
			}
			prevCovered = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
