package stitch_test

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
	"probablecause/internal/stitch"
)

// Example stitches two overlapping outputs of one machine into a single
// whole-memory fingerprint cluster.
func Example() {
	victim := drammodel.New(7)
	sample := func(startPage, pages int, trial uint64) stitch.Sample {
		s := stitch.Sample{Pages: make([]bitset.Sparse, pages)}
		for i := range s.Pages {
			fp, err := victim.PageErrors(uint64(startPage+i), 0.01, trial)
			if err != nil {
				panic(err)
			}
			s.Pages[i] = fp
		}
		return s
	}

	st, err := stitch.New(stitch.Config{})
	if err != nil {
		panic(err)
	}
	// Output 1 covered physical pages 0-5; output 2 covered 4-9.
	if _, err := st.Add(sample(0, 6, 1)); err != nil {
		panic(err)
	}
	if _, err := st.Add(sample(4, 6, 2)); err != nil {
		panic(err)
	}
	fmt.Println("suspected machines:", st.Count())
	fmt.Println("fingerprinted pages:", st.CoveredPages())
	// Output:
	// suspected machines: 1
	// fingerprinted pages: 10
}
