package stitch

import (
	"bytes"
	"testing"

	"probablecause/internal/drammodel"
	"probablecause/internal/prng"
)

// stitchAll runs the full sample stream through a fresh stitcher with the
// given worker count and returns the canonical serialized database.
func stitchAll(t *testing.T, cfg Config, samples []Sample, workers int) ([]byte, int) {
	t.Helper()
	cfg.Workers = workers
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range samples {
		if _, err := st.Add(smp); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st.Count()
}

// overlappingSamples builds a stream whose windows overlap enough to force
// merges, unions of multiple roots, and refinement — every code path the
// parallel phases touch.
func overlappingSamples(t *testing.T, seed uint64, n, width, span int) []Sample {
	t.Helper()
	model := drammodel.New(seed)
	model.BandSigma = 0
	rng := prng.New(seed ^ 0xA11E1)
	starts := make([]int, n)
	for i := range starts {
		starts[i] = rng.Intn(span)
	}
	return buildSamples(t, model, starts, width)
}

// TestParallelStitchMatchesSerial is the tentpole determinism contract: for
// every worker count the stitcher produces a byte-identical database —
// identical clusters, offsets, and page fingerprints — because mutation stays
// serial and the verified-alignment merge order is sorted, not scheduled.
func TestParallelStitchMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"lsh", Config{}},
		{"brute", Config{Brute: true}},
		{"union-refine", Config{Refine: RefineUnion}},
		{"min-overlap-2", Config{MinOverlap: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			samples := overlappingSamples(t, 0x5717C4+uint64(len(tc.name)), 24, 6, 40)
			wantDB, wantCount := stitchAll(t, tc.cfg, samples, 1)
			for _, workers := range []int{2, 4, 8} {
				gotDB, gotCount := stitchAll(t, tc.cfg, samples, workers)
				if gotCount != wantCount {
					t.Fatalf("workers=%d: %d clusters, serial built %d", workers, gotCount, wantCount)
				}
				if !bytes.Equal(gotDB, wantDB) {
					t.Fatalf("workers=%d: serialized database differs from serial run (%d vs %d bytes)",
						workers, len(gotDB), len(wantDB))
				}
			}
		})
	}
}

// TestParallelStitchDeterministicAcrossRuns guards against within-run
// nondeterminism that a serial-vs-parallel diff can miss (e.g. map iteration
// order leaking into merge decisions on BOTH sides): the same input must
// yield the same bytes on repeated parallel runs.
func TestParallelStitchDeterministicAcrossRuns(t *testing.T) {
	samples := overlappingSamples(t, 0xD37, 20, 5, 30)
	first, _ := stitchAll(t, Config{}, samples, 4)
	for run := 0; run < 3; run++ {
		again, _ := stitchAll(t, Config{}, samples, 4)
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d produced different bytes than run 0", run)
		}
	}
}
