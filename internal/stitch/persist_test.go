package stitch

import (
	"bytes"
	"strings"
	"testing"

	"probablecause/internal/drammodel"
)

func TestPersistRoundTrip(t *testing.T) {
	m := drammodel.New(0x9E51)
	st := newStitcher(t, Config{})
	for trial := uint64(1); trial <= 6; trial++ {
		if _, err := st.Add(sampleAt(t, m, int(trial)*3, 6, trial)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	n, err := st.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count() != st.Count() {
		t.Fatalf("clusters %d != %d", loaded.Count(), st.Count())
	}
	if loaded.CoveredPages() != st.CoveredPages() {
		t.Fatalf("pages %d != %d", loaded.CoveredPages(), st.CoveredPages())
	}
	if loaded.Samples() != st.Samples() {
		t.Fatalf("samples %d != %d", loaded.Samples(), st.Samples())
	}

	// The reloaded archive must keep working: an overlapping sample merges
	// into the existing cluster rather than founding a new one.
	before := loaded.Count()
	if _, err := loaded.Add(sampleAt(t, m, 5, 6, 99)); err != nil {
		t.Fatal(err)
	}
	if loaded.Count() > before {
		t.Fatal("reloaded database failed to match a known region")
	}
}

func TestPersistEmpty(t *testing.T) {
	st := newStitcher(t, Config{})
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count() != 0 {
		t.Fatalf("Count = %d", loaded.Count())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE01",
		"PCST01",                                 // truncated header
		"PCST01\x01\x00\x00\x00\x00\x00\x00\x00", // 1 cluster, no body
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c), Config{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadRejectsBadConfig(t *testing.T) {
	if _, err := Load(strings.NewReader("PCST01"), Config{Threshold: 5}); err == nil {
		t.Fatal("bad config accepted")
	}
}
