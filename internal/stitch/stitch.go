// Package stitch implements the fingerprint-stitching attack of §4: building
// a whole-memory fingerprint from many partial observations.
//
// Each captured approximate output yields a *sample* — a run of page-level
// fingerprints in buffer order. Because the OS places an output buffer in
// consecutive physical pages at a run-dependent base (see osmodel), two
// outputs that overlapped in physical memory share a run of matching
// page-level fingerprints. The stitcher:
//
//  1. looks up each page of a new sample in an LSH index over all previously
//     seen pages (see minhash), producing candidate (cluster, offset)
//     alignments;
//  2. verifies candidate alignments with the paper's distance metric
//     (Algorithm 3) page by page;
//  3. merges the sample into every verified cluster — refining overlapping
//     page fingerprints by intersection, exactly like characterization
//     (Algorithm 1) — and merges those clusters with each other, since the
//     sample proves they are regions of one physical memory.
//
// Clusters are kept in a weighted union-find whose edges carry the offset
// translation between cluster coordinate frames, so stale index references
// created before a merge remain resolvable afterwards.
//
// The number of live clusters is the attacker's count of suspected distinct
// machines; Figure 13 tracks it as samples accumulate.
package stitch

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/minhash"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
)

// Stitching metrics. The gauges answer the attack's two headline questions
// (how many machines does the attacker believe exist, and how much memory
// has been fingerprinted — Fig. 13); the counters expose the work the LSH
// index saves versus brute force.
var (
	cSamples     = obs.C("stitch.samples")
	cCandidates  = obs.C("stitch.candidates.scanned")
	cVerifyCalls = obs.C("stitch.verify.calls")
	cVerifyOK    = obs.C("stitch.verify.matched")
	cMerges      = obs.C("stitch.cluster.merges")
	cNewClusters = obs.C("stitch.cluster.new")
	cPagesBad    = obs.C("stitch.pages.rejected")
	cSamplesBad  = obs.C("stitch.samples.rejected")
	gClusters    = obs.G("stitch.clusters")
	gCovered     = obs.G("stitch.covered_pages")
)

// ErrSampleRejected is returned (wrapped) by Add when outlier rejection
// discards every page of a sample: nothing credible remains to stitch, and
// admitting the husk would inflate the cluster count with an empty cluster.
// Lenient pipelines skip-and-count these; they are not transient.
var ErrSampleRejected = errors.New("stitch: sample rejected by outlier filter")

// RefineMode selects how a cluster's stored page fingerprint is updated
// when a new matching observation of the same page arrives.
type RefineMode int

const (
	// RefineIntersect replaces the stored fingerprint with its intersection
	// with the new observation — Algorithm 1 applied page-wise. Correct for
	// worst-case data, where every volatile cell is visible in every
	// output: intersection strips only trial noise.
	RefineIntersect RefineMode = iota
	// RefineUnion accumulates observed error positions. Required when
	// outputs expose only the cells their data happened to charge
	// (ChargedFraction < 1 in the model): intersecting partial views would
	// erase the fingerprint, while the union converges to the full volatile
	// set.
	RefineUnion
	// RefineKeep leaves the first stored fingerprint untouched.
	RefineKeep
)

// Config parameterizes a Stitcher.
type Config struct {
	// Threshold is the page-fingerprint distance below which two pages are
	// considered the same physical page. Defaults to
	// fingerprint.DefaultThreshold.
	Threshold float64
	// MinOverlap is the number of verified page matches required to accept
	// an alignment. 1 suffices given the fingerprint-space combinatorics of
	// Table 1; raise it to trade recall for robustness.
	MinOverlap int
	// Scheme is the MinHash/LSH scheme; defaults to minhash.DefaultScheme.
	Scheme minhash.Scheme
	// Brute disables the LSH index and scans every stored page per query —
	// the quadratic baseline for the LSH ablation.
	Brute bool
	// Refine selects the page-fingerprint update rule; defaults to
	// RefineIntersect (the paper's Algorithm 1).
	Refine RefineMode

	// MaxBitPos, when non-zero, enables outlier rejection of pages whose
	// fingerprint contains any bit position ≥ MaxBitPos. Error positions
	// are page-relative, so positions beyond the page size can only come
	// from corruption; set this to the page size in bits (dram.PageBits
	// for the paper's platform).
	MaxBitPos uint32
	// OutlierFactor, when non-zero, enables density-based outlier
	// rejection: pages whose error-bit count exceeds OutlierFactor × the
	// sample's median non-empty page cardinality are discarded. Real pages
	// of one output share an error rate (they decayed under the same
	// refresh interval), so a page an order of magnitude denser than its
	// siblings is corruption, not physics. 8 is a safe factor for the
	// paper's error-rate regimes.
	OutlierFactor float64

	// Workers bounds the worker pool used inside Add for per-page signature
	// computation, candidate lookup, and alignment verification — the
	// read-only phases that dominate stitching cost. 0 or 1 runs inline
	// (pool.Map semantics); any worker count produces byte-identical
	// clusters because union-find mutation and merging stay serial and the
	// merge order is fixed by sorting verified alignments.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = fingerprint.DefaultThreshold
	}
	if c.MinOverlap == 0 {
		c.MinOverlap = 1
	}
	if c.Scheme == (minhash.Scheme{}) {
		c.Scheme = minhash.DefaultScheme
	}
	return c
}

// Sample is one captured approximate output: the fingerprints of its pages
// in buffer order.
type Sample struct {
	Pages []bitset.Sparse
}

// pageRef locates a page in the coordinate frame of the cluster that first
// stored it; union-find translation maps it to the current root's frame.
type pageRef struct {
	cluster int
	offset  int
}

type alignment struct {
	root int // resolved root cluster
	base int // sample page i sits at root offset base+i
}

// Stitcher accumulates samples into whole-memory fingerprint clusters.
type Stitcher struct {
	cfg   Config
	index *minhash.Index[pageRef]

	parent []int                   // union-find parent; parent[i] == i for roots
	shift  []int                   // offset from node i's frame to parent's frame
	pages  []map[int]bitset.Sparse // root-only: offset → fingerprint
	live   int

	samples       int
	rejectedPages int // outlier pages discarded by sanitize
}

// New returns an empty stitcher.
func New(cfg Config) (*Stitcher, error) {
	cfg = cfg.withDefaults()
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("stitch: threshold %v outside [0,1]", cfg.Threshold)
	}
	if cfg.MinOverlap < 1 {
		return nil, fmt.Errorf("stitch: min overlap %d < 1", cfg.MinOverlap)
	}
	ix, err := minhash.NewIndex[pageRef](cfg.Scheme)
	if err != nil {
		return nil, err
	}
	return &Stitcher{cfg: cfg, index: ix}, nil
}

// find resolves node c to its root and the offset translation from c's frame
// to the root's frame, compressing the path.
func (s *Stitcher) find(c int) (root, off int) {
	if s.parent[c] == c {
		return c, 0
	}
	r, o := s.find(s.parent[c])
	s.parent[c] = r
	s.shift[c] += o
	return r, s.shift[c]
}

// Count returns the number of live clusters — suspected distinct machines.
func (s *Stitcher) Count() int { return s.live }

// Samples returns how many samples have been added.
func (s *Stitcher) Samples() int { return s.samples }

// RejectedPages returns how many outlier pages the sanitizer has discarded
// across all samples — the volume of corruption absorbed without poisoning
// the database.
func (s *Stitcher) RejectedPages() int { return s.rejectedPages }

// CoveredPages returns the total number of distinct fingerprinted pages
// across all clusters — the size of the attacker's database (§4).
func (s *Stitcher) CoveredPages() int {
	n := 0
	for i := range s.parent {
		if s.parent[i] == i {
			n += len(s.pages[i])
		}
	}
	return n
}

// LargestCluster returns the page count of the biggest cluster, 0 if none.
func (s *Stitcher) LargestCluster() int {
	max := 0
	for i := range s.parent {
		if s.parent[i] == i && len(s.pages[i]) > max {
			max = len(s.pages[i])
		}
	}
	return max
}

// Add ingests one sample and returns the root cluster id it now belongs
// to. With outlier rejection configured (MaxBitPos / OutlierFactor),
// corrupted pages are discarded before alignment; if nothing credible
// remains the sample is refused with an error wrapping ErrSampleRejected.
func (s *Stitcher) Add(sample Sample) (int, error) {
	if len(sample.Pages) == 0 {
		return 0, fmt.Errorf("stitch: empty sample")
	}
	if s.cfg.MaxBitPos > 0 || s.cfg.OutlierFactor > 0 {
		clean, rejected := s.sanitize(sample)
		if rejected > 0 {
			s.rejectedPages += rejected
			if obs.On() {
				cPagesBad.Add(int64(rejected))
			}
			if !hasObservedPage(clean) {
				if obs.On() {
					cSamplesBad.Inc()
				}
				return 0, fmt.Errorf("%w: all %d non-empty pages discarded", ErrSampleRejected, rejected)
			}
		}
		sample = clean
	}
	s.samples++
	ctx, sp := obs.Start(context.Background(), "stitch.add")
	sp.SetAttr("sample_pages", len(sample.Pages))
	root := s.add(ctx, sample)
	if obs.On() {
		cSamples.Inc()
		gClusters.Set(int64(s.live))
		gCovered.Set(int64(s.CoveredPages()))
	}
	sp.SetAttr("clusters", s.live)
	sp.End()
	return root, nil
}

// add is Add's instrumented body.
func (s *Stitcher) add(ctx context.Context, sample Sample) int {
	// Sign every observed page exactly once, up front: the signatures feed
	// both candidate lookup and, for pages that turn out to be new, index
	// insertion. Signing is the pure, per-page dominant cost, so it fans out
	// across the pool.
	sigs := s.signPages(sample)
	_, asp := obs.Start(ctx, "stitch.align")
	aligns := s.alignments(sample, sigs)
	asp.SetAttr("alignments", len(aligns))
	asp.End()
	if len(aligns) == 0 {
		return s.newCluster(sample, sigs)
	}

	// Merge the sample into the first verified alignment, then union every
	// further aligned cluster into it: the sample witnesses that they are
	// all windows of the same physical memory.
	primary := aligns[0]
	for _, a := range aligns[1:] {
		// Frames: sampleIdx i ↔ primary offset primary.base+i ↔ a.root
		// offset a.base+i, so aRootOff + (primary.base − a.base) = primaryOff.
		s.union(a.root, primary.root, primary.base-a.base)
	}
	root, off := s.find(primary.root)
	_, msp := obs.Start(ctx, "stitch.merge")
	s.mergeSample(root, primary.base+off, sample, sigs)
	msp.End()
	return root
}

// signPages computes the LSH signature of every observed page, fanned across
// the configured pool. Returns nil in brute mode, where signatures are unused.
func (s *Stitcher) signPages(sample Sample) []minhash.Signature {
	if s.cfg.Brute {
		return nil
	}
	sigs := make([]minhash.Signature, len(sample.Pages))
	pool.Map(s.cfg.Workers, len(sample.Pages), func(i int) {
		if sample.Pages[i].Card() > 0 {
			sigs[i] = s.cfg.Scheme.Sign(sample.Pages[i])
		}
	})
	return sigs
}

// alignments returns verified alignments, deduplicated by root, best first.
// The order is fully deterministic — (matched desc, root asc, base asc) — so
// the downstream merge applies identically for every worker count.
func (s *Stitcher) alignments(sample Sample, sigs []minhash.Signature) []alignment {
	// Candidate lookup per page is read-only on the index (or, in brute
	// mode, on the cluster maps) and runs in parallel.
	cands := make([][]pageRef, len(sample.Pages))
	pool.Map(s.cfg.Workers, len(sample.Pages), func(i int) {
		if sample.Pages[i].Card() > 0 {
			cands[i] = s.candidates(sample.Pages[i], sigs, i)
		}
	})
	// Vote resolution must stay serial: find() compresses paths, mutating
	// the union-find arrays.
	votes := make(map[alignment]int)
	for i := range sample.Pages {
		for _, ref := range cands[i] {
			root, off := s.find(ref.cluster)
			votes[alignment{root: root, base: ref.offset + off - i}]++
		}
	}
	distinct := make([]alignment, 0, len(votes))
	for a := range votes {
		distinct = append(distinct, a)
	}
	sort.Slice(distinct, func(i, j int) bool {
		if distinct[i].root != distinct[j].root {
			return distinct[i].root < distinct[j].root
		}
		return distinct[i].base < distinct[j].base
	})
	// Verification only reads cluster pages; each distinct alignment
	// verifies independently. Results land in index-owned slots so the
	// reduction below sees them in sorted order regardless of completion
	// order.
	matched := make([]int, len(distinct))
	pool.Map(s.cfg.Workers, len(distinct), func(k int) {
		matched[k] = s.verify(distinct[k], sample)
	})
	// Keep the best alignment per root; ties resolve to the first in sorted
	// order, never to map-iteration luck.
	type scored struct {
		a       alignment
		matched int
	}
	best := make(map[int]scored)
	for k, a := range distinct {
		if matched[k] < s.cfg.MinOverlap {
			continue
		}
		if b, ok := best[a.root]; !ok || matched[k] > b.matched {
			best[a.root] = scored{a: a, matched: matched[k]}
		}
	}
	out := make([]scored, 0, len(best))
	for _, b := range best {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].matched != out[j].matched {
			return out[i].matched > out[j].matched
		}
		if out[i].a.root != out[j].a.root {
			return out[i].a.root < out[j].a.root
		}
		return out[i].a.base < out[j].a.base
	})
	aligns := make([]alignment, len(out))
	for i, b := range out {
		aligns[i] = b.a
	}
	return aligns
}

// candidates returns page references possibly matching sample page i. Safe
// for concurrent use: it reads the index (or cluster maps) only.
func (s *Stitcher) candidates(fp bitset.Sparse, sigs []minhash.Signature, i int) []pageRef {
	if !s.cfg.Brute {
		out := s.index.Candidates(sigs[i])
		if obs.On() {
			cCandidates.Add(int64(len(out)))
		}
		return out
	}
	scanned := 0
	var out []pageRef
	for c := range s.parent {
		if s.parent[c] != c {
			continue
		}
		scanned += len(s.pages[c])
		for off, stored := range s.pages[c] {
			if fingerprint.SparseDistance(fp, stored) < s.cfg.Threshold {
				out = append(out, pageRef{cluster: c, offset: off})
			}
		}
	}
	if obs.On() {
		cCandidates.Add(int64(scanned))
	}
	return out
}

// verify counts the sample pages whose fingerprint matches the cluster page
// at the aligned offset.
func (s *Stitcher) verify(a alignment, sample Sample) int {
	if obs.On() {
		cVerifyCalls.Inc()
	}
	matched := 0
	for i, fp := range sample.Pages {
		if fp.Card() == 0 {
			continue
		}
		stored, ok := s.pages[a.root][a.base+i]
		if !ok {
			continue
		}
		if fingerprint.SparseDistance(fp, stored) < s.cfg.Threshold {
			matched++
		}
	}
	if obs.On() && matched >= s.cfg.MinOverlap {
		cVerifyOK.Inc()
	}
	return matched
}

// newCluster stores the sample as a fresh cluster, reusing the signatures
// computed at the top of add.
func (s *Stitcher) newCluster(sample Sample, sigs []minhash.Signature) int {
	id := len(s.parent)
	s.parent = append(s.parent, id)
	s.shift = append(s.shift, 0)
	m := make(map[int]bitset.Sparse, len(sample.Pages))
	s.pages = append(s.pages, m)
	s.live++
	if obs.On() {
		cNewClusters.Inc()
	}
	for i, fp := range sample.Pages {
		m[i] = fp.Clone()
		s.indexPage(id, i, fp, sigs, i)
	}
	return id
}

// mergeSample folds the sample into root at the given base offset.
func (s *Stitcher) mergeSample(root, base int, sample Sample, sigs []minhash.Signature) {
	m := s.pages[root]
	for i, fp := range sample.Pages {
		off := base + i
		if stored, ok := m[off]; ok {
			// Refine only when the new observation really matches the
			// stored page; a poor match must not corrupt the database.
			if fingerprint.SparseDistance(fp, stored) < s.cfg.Threshold {
				m[off] = s.refine(stored, fp)
			}
			continue
		}
		m[off] = fp.Clone()
		s.indexPage(root, off, fp, sigs, i)
	}
}

// refine applies the configured fingerprint-update rule.
func (s *Stitcher) refine(stored, observed bitset.Sparse) bitset.Sparse {
	switch s.cfg.Refine {
	case RefineUnion:
		return stored.Union(observed)
	case RefineKeep:
		return stored
	default:
		return stored.Intersect(observed)
	}
}

// sanitize applies the configured outlier filters, returning a copy of the
// sample with rejected pages replaced by empty (unobserved) fingerprints
// and the number of pages rejected. An empty page participates in nothing:
// it is skipped by alignment, verification, and indexing, so a rejected
// page is exactly "this page was not captured" — the graceful-degradation
// contract that lets a bounded fraction of corruption pass through the
// stitcher without poisoning cluster merging.
func (s *Stitcher) sanitize(sample Sample) (Sample, int) {
	maxCard := -1
	if s.cfg.OutlierFactor > 0 {
		cards := make([]int, 0, len(sample.Pages))
		for _, p := range sample.Pages {
			if p.Card() > 0 {
				cards = append(cards, p.Card())
			}
		}
		if len(cards) >= 3 { // a median of fewer observations is no baseline
			sort.Ints(cards)
			maxCard = int(s.cfg.OutlierFactor * float64(cards[len(cards)/2]))
		}
	}
	out := Sample{Pages: make([]bitset.Sparse, len(sample.Pages))}
	rejected := 0
	for i, p := range sample.Pages {
		switch {
		case p.Card() == 0:
			out.Pages[i] = p
		// Sparse fingerprints are sorted ascending, so the last position is
		// the maximum: one comparison decides the range check.
		case s.cfg.MaxBitPos > 0 && p[len(p)-1] >= s.cfg.MaxBitPos:
			rejected++
		case maxCard > 0 && p.Card() > maxCard:
			rejected++
		default:
			out.Pages[i] = p
		}
	}
	return out, rejected
}

// hasObservedPage reports whether any page of the sample carries bits.
func hasObservedPage(sample Sample) bool {
	for _, p := range sample.Pages {
		if p.Card() > 0 {
			return true
		}
	}
	return false
}

// indexPage registers a page in the LSH index (no-op in brute mode; brute
// candidates scan the cluster maps directly). When the caller is stitching a
// sample, the page's precomputed signature is passed via (sigs, i); callers
// without one (Load rebuilding the index) pass nil and the page is signed
// here.
func (s *Stitcher) indexPage(cluster, offset int, fp bitset.Sparse, sigs []minhash.Signature, i int) {
	if s.cfg.Brute || fp.Card() == 0 {
		return
	}
	sig := minhash.Signature(nil)
	if sigs != nil {
		sig = sigs[i]
	}
	if sig == nil {
		sig = s.cfg.Scheme.Sign(fp)
	}
	s.index.Add(sig, pageRef{cluster: cluster, offset: offset})
}

// union merges cluster a into cluster b's component. delta is the offset
// translation from a's root frame to b's root frame: bOff = aOff + delta.
func (s *Stitcher) union(a, b, delta int) {
	ra, oa := s.find(a)
	rb, ob := s.find(b)
	if ra == rb {
		return
	}
	if obs.On() {
		cMerges.Inc()
	}
	// Translate delta from the (a,b) frames to the (ra,rb) root frames:
	// aOff = raOff ... careful: oa maps a's frame to ra's frame? shift[c]
	// maps c's frame to parent's. find(a) returns offset from a's frame to
	// root's frame: rootOff = aOff + oa. We were given bOff = aOff + delta.
	// So rbOff = bOff + ob = aOff + delta + ob = (raOff − oa) + delta + ob.
	d := delta + ob - oa // rbOff = raOff + d
	// Merge the smaller page map into the larger.
	if len(s.pages[ra]) > len(s.pages[rb]) {
		ra, rb, d = rb, ra, -d
	}
	for off, fp := range s.pages[ra] {
		target := off + d
		if stored, ok := s.pages[rb][target]; ok {
			if fingerprint.SparseDistance(fp, stored) < s.cfg.Threshold {
				s.pages[rb][target] = s.refine(stored, fp)
			}
		} else {
			s.pages[rb][target] = fp
		}
	}
	s.pages[ra] = nil
	s.parent[ra] = rb
	s.shift[ra] = d
	s.live--
}
