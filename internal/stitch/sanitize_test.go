package stitch

import (
	"errors"
	"testing"

	"probablecause/internal/bitset"
)

// page builds a plausible page fingerprint: card ascending positions below
// 32768, offset per page index so distinct pages don't alias.
func page(idx, card int) bitset.Sparse {
	pos := make([]uint32, 0, card)
	for k := 0; k < card; k++ {
		pos = append(pos, uint32((idx*997+k*73)%32768))
	}
	return bitset.NewSparse(pos)
}

func TestSanitizeRejectsOutOfRangeAndDensePages(t *testing.T) {
	st, err := New(Config{MaxBitPos: 32768, OutlierFactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{Pages: []bitset.Sparse{
		page(0, 40), page(1, 40), page(2, 40), page(3, 40),
		bitset.NewSparse([]uint32{5, 40000}), // out of page range
		page(5, 40*20),                       // 20× the median density
	}}
	if _, err := st.Add(s); err != nil {
		t.Fatal(err)
	}
	if got := st.RejectedPages(); got != 2 {
		t.Fatalf("rejected %d pages, want 2", got)
	}
	// The surviving pages formed one cluster; the corrupt ones were
	// treated as unobserved, not stored.
	if st.Count() != 1 {
		t.Fatalf("clusters = %d", st.Count())
	}
}

func TestSanitizeDisabledByDefault(t *testing.T) {
	st, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Without the filters, even absurd pages are accepted (the seed
	// pipeline's behavior, preserved for callers that pre-validate).
	s := Sample{Pages: []bitset.Sparse{bitset.NewSparse([]uint32{5, 1 << 30})}}
	if _, err := st.Add(s); err != nil {
		t.Fatal(err)
	}
	if st.RejectedPages() != 0 || st.Count() != 1 {
		t.Fatalf("rejected=%d clusters=%d", st.RejectedPages(), st.Count())
	}
}

func TestSanitizeRejectsFullyCorruptSample(t *testing.T) {
	st, err := New(Config{MaxBitPos: 32768})
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{Pages: []bitset.Sparse{
		bitset.NewSparse([]uint32{40000}),
		bitset.NewSparse([]uint32{99999}),
	}}
	_, err = st.Add(s)
	if !errors.Is(err, ErrSampleRejected) {
		t.Fatalf("got %v, want ErrSampleRejected", err)
	}
	// The husk must not have become a cluster or counted as a sample.
	if st.Count() != 0 || st.Samples() != 0 {
		t.Fatalf("rejected sample leaked state: clusters=%d samples=%d", st.Count(), st.Samples())
	}
}

func TestSanitizeKeepsAlignmentAcrossCorruption(t *testing.T) {
	// Two observations of the same region, the second with one corrupted
	// page: outlier rejection must drop the bad page but still align and
	// merge the sample into the first cluster.
	st, err := New(Config{MaxBitPos: 32768, OutlierFactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	clean := Sample{Pages: []bitset.Sparse{page(0, 40), page(1, 40), page(2, 40), page(3, 40)}}
	if _, err := st.Add(clean); err != nil {
		t.Fatal(err)
	}
	corrupt := Sample{Pages: []bitset.Sparse{
		page(0, 40), page(1, 40),
		bitset.NewSparse([]uint32{7, 50000}), // page 2 corrupted
		page(3, 40),
	}}
	if _, err := st.Add(corrupt); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 1 {
		t.Fatalf("corrupted page broke alignment: %d clusters", st.Count())
	}
	if st.RejectedPages() != 1 {
		t.Fatalf("rejected %d pages, want 1", st.RejectedPages())
	}
}
