package stitch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"probablecause/internal/bitset"
)

// stMagic identifies the stitcher-database file format.
var stMagic = [6]byte{'P', 'C', 'S', 'T', '0', '1'}

// WriteTo serializes the attacker's cluster database ("a database equal to
// the size of the fingerprinted region of memory", §4). Only live clusters
// and their page fingerprints are stored; union-find history and index state
// are rebuilt on load. It implements io.WriterTo.
func (s *Stitcher) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(stMagic[:])); err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(s.live))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.samples))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	for c := range s.parent {
		if s.parent[c] != c {
			continue
		}
		pages := s.pages[c]
		var pc [4]byte
		binary.LittleEndian.PutUint32(pc[:], uint32(len(pages)))
		if err := count(bw.Write(pc[:])); err != nil {
			return n, err
		}
		// Deterministic output: offsets in ascending order.
		offsets := make([]int, 0, len(pages))
		for off := range pages {
			offsets = append(offsets, off)
		}
		sort.Ints(offsets)
		for _, off := range offsets {
			var oh [8]byte
			binary.LittleEndian.PutUint64(oh[:], uint64(int64(off)))
			if err := count(bw.Write(oh[:])); err != nil {
				return n, err
			}
			blob, err := pages[off].MarshalBinary()
			if err != nil {
				return n, err
			}
			var bl [4]byte
			binary.LittleEndian.PutUint32(bl[:], uint32(len(blob)))
			if err := count(bw.Write(bl[:])); err != nil {
				return n, err
			}
			if err := count(bw.Write(blob)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Load reconstructs a stitcher from a database written by WriteTo, using the
// given configuration for future matching.
func Load(r io.Reader, cfg Config) (*Stitcher, error) {
	st, err := New(cfg)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stitch: reading magic: %w", err)
	}
	if magic != stMagic {
		return nil, fmt.Errorf("stitch: not a stitcher database (magic %q)", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stitch: reading header: %w", err)
	}
	clusters := binary.LittleEndian.Uint32(hdr[:4])
	st.samples = int(binary.LittleEndian.Uint32(hdr[4:]))
	if clusters > 1<<24 {
		return nil, fmt.Errorf("stitch: implausible cluster count %d", clusters)
	}
	for ci := uint32(0); ci < clusters; ci++ {
		var pc [4]byte
		if _, err := io.ReadFull(br, pc[:]); err != nil {
			return nil, fmt.Errorf("stitch: cluster %d header: %w", ci, err)
		}
		pageCount := binary.LittleEndian.Uint32(pc[:])
		if pageCount > 1<<28 {
			return nil, fmt.Errorf("stitch: implausible page count %d", pageCount)
		}
		id := len(st.parent)
		st.parent = append(st.parent, id)
		st.shift = append(st.shift, 0)
		m := make(map[int]bitset.Sparse, pageCount)
		st.pages = append(st.pages, m)
		st.live++
		for pi := uint32(0); pi < pageCount; pi++ {
			var oh [8]byte
			if _, err := io.ReadFull(br, oh[:]); err != nil {
				return nil, fmt.Errorf("stitch: cluster %d page %d offset: %w", ci, pi, err)
			}
			off := int(int64(binary.LittleEndian.Uint64(oh[:])))
			var bl [4]byte
			if _, err := io.ReadFull(br, bl[:]); err != nil {
				return nil, fmt.Errorf("stitch: cluster %d page %d length: %w", ci, pi, err)
			}
			blobLen := binary.LittleEndian.Uint32(bl[:])
			if blobLen > 1<<30 {
				return nil, fmt.Errorf("stitch: implausible page blob of %d bytes", blobLen)
			}
			blob := make([]byte, blobLen)
			if _, err := io.ReadFull(br, blob); err != nil {
				return nil, fmt.Errorf("stitch: cluster %d page %d payload: %w", ci, pi, err)
			}
			fp, err := bitset.UnmarshalSparse(blob)
			if err != nil {
				return nil, fmt.Errorf("stitch: cluster %d page %d: %w", ci, pi, err)
			}
			if _, dup := m[off]; dup {
				return nil, fmt.Errorf("stitch: cluster %d has duplicate offset %d", ci, off)
			}
			m[off] = fp
			st.indexPage(id, off, fp, nil, 0)
		}
	}
	return st, nil
}
