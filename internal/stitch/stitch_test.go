package stitch

import (
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
	"probablecause/internal/osmodel"
)

// sampleAt builds a sample from the model's pages [start, start+n).
func sampleAt(t *testing.T, m *drammodel.Model, start, n int, trial uint64) Sample {
	t.Helper()
	pages := make([]bitset.Sparse, n)
	for i := range pages {
		fp, err := m.PageErrors(uint64(start+i), 0.01, trial)
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = fp
	}
	return Sample{Pages: pages}
}

func newStitcher(t *testing.T, cfg Config) *Stitcher {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Threshold: 2}); err == nil {
		t.Error("threshold 2 accepted")
	}
	if _, err := New(Config{MinOverlap: -1}); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestEmptySampleRejected(t *testing.T) {
	s := newStitcher(t, Config{})
	if _, err := s.Add(Sample{}); err != nil {
		// expected
	} else {
		t.Fatal("empty sample accepted")
	}
}

func TestDisjointSamplesFormSeparateClusters(t *testing.T) {
	m := drammodel.New(1)
	s := newStitcher(t, Config{})
	if _, err := s.Add(sampleAt(t, m, 0, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(sampleAt(t, m, 100, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (no overlap to stitch)", s.Count())
	}
}

func TestOverlappingSamplesMerge(t *testing.T) {
	m := drammodel.New(2)
	s := newStitcher(t, Config{})
	c1, err := s.Add(sampleAt(t, m, 0, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Add(sampleAt(t, m, 4, 6, 2)) // pages 4,5 overlap
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1 after overlap", s.Count())
	}
	if r1, _ := s.find(c1); r1 != c2 && c1 != c2 {
		t.Fatalf("samples in different clusters: %d vs %d", c1, c2)
	}
	// The merged cluster spans pages 0..9: ten distinct pages.
	if got := s.CoveredPages(); got != 10 {
		t.Fatalf("CoveredPages = %d, want 10", got)
	}
	if got := s.LargestCluster(); got != 10 {
		t.Fatalf("LargestCluster = %d, want 10", got)
	}
}

func TestBridgeSampleMergesTwoClusters(t *testing.T) {
	m := drammodel.New(3)
	s := newStitcher(t, Config{})
	if _, err := s.Add(sampleAt(t, m, 0, 4, 1)); err != nil { // pages 0-3
		t.Fatal(err)
	}
	if _, err := s.Add(sampleAt(t, m, 8, 4, 2)); err != nil { // pages 8-11
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("premise: Count = %d, want 2", s.Count())
	}
	// Bridge touches both: pages 2..9.
	if _, err := s.Add(sampleAt(t, m, 2, 8, 3)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1 after bridge", s.Count())
	}
	if got := s.CoveredPages(); got != 12 {
		t.Fatalf("CoveredPages = %d, want 12 (pages 0..11)", got)
	}
}

func TestDifferentChipsNeverMerge(t *testing.T) {
	a, b := drammodel.New(4), drammodel.New(5)
	s := newStitcher(t, Config{})
	// Same page numbers, different devices: fingerprints are unrelated.
	if _, err := s.Add(sampleAt(t, a, 0, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(sampleAt(t, b, 0, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2 — different devices merged!", s.Count())
	}
}

func TestRepeatedSampleRefinesNotGrows(t *testing.T) {
	m := drammodel.New(6)
	s := newStitcher(t, Config{})
	if _, err := s.Add(sampleAt(t, m, 0, 4, 1)); err != nil {
		t.Fatal(err)
	}
	before := s.CoveredPages()
	if _, err := s.Add(sampleAt(t, m, 0, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	if got := s.CoveredPages(); got != before {
		t.Fatalf("CoveredPages grew %d→%d on repeated sample", before, got)
	}
	if s.Samples() != 2 {
		t.Fatalf("Samples = %d, want 2", s.Samples())
	}
}

func TestIntersectionRefinementStripsNoise(t *testing.T) {
	m := drammodel.New(7)
	s := newStitcher(t, Config{})
	root := 0
	for trial := uint64(1); trial <= 8; trial++ {
		r, err := s.Add(sampleAt(t, m, 0, 2, trial))
		if err != nil {
			t.Fatal(err)
		}
		root = r
	}
	// After 8 trials the stored fingerprint must be (close to) the noise-free
	// volatile core: a subset of every later observation's errors.
	truth, err := m.VolatileSet(0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rootID, off := s.find(root)
	stored := s.pages[rootID][0+off]
	extra := stored.DiffCount(truth)
	if float64(extra) > 0.05*float64(stored.Card()) {
		t.Fatalf("%d of %d stored bits are not in the true volatile set", extra, stored.Card())
	}
}

func TestBruteMatchesLSH(t *testing.T) {
	m := drammodel.New(8)
	run := func(brute bool) (int, int) {
		s := newStitcher(t, Config{Brute: brute})
		mem, err := osmodel.NewMemory(64, 99)
		if err != nil {
			t.Fatal(err)
		}
		for trial := uint64(1); trial <= 30; trial++ {
			pl, err := mem.Place(8)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(sampleAt(t, m, pl.Phys[0], 8, trial)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Count(), s.CoveredPages()
	}
	lc, lp := run(false)
	bc, bp := run(true)
	if lc != bc || lp != bp {
		t.Fatalf("LSH (%d clusters, %d pages) != brute (%d clusters, %d pages)", lc, lp, bc, bp)
	}
}

func TestConvergenceTowardSingleCluster(t *testing.T) {
	// Miniature Figure 13: 64-page memory, 8-page samples. After enough
	// samples everything connects into one cluster.
	m := drammodel.New(9)
	mem, err := osmodel.NewMemory(64, 123)
	if err != nil {
		t.Fatal(err)
	}
	s := newStitcher(t, Config{})
	peak := 0
	for trial := uint64(1); trial <= 60; trial++ {
		pl, err := mem.Place(8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(sampleAt(t, m, pl.Phys[0], 8, trial)); err != nil {
			t.Fatal(err)
		}
		if s.Count() > peak {
			peak = s.Count()
		}
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d after 60 samples of a 64-page memory, want 1", s.Count())
	}
	if peak < 2 {
		t.Fatalf("peak cluster count = %d — convergence curve degenerate", peak)
	}
	if got := s.CoveredPages(); got > 64 {
		t.Fatalf("CoveredPages = %d exceeds physical memory", got)
	}
}

func TestScatteredPlacementDefeatsStitching(t *testing.T) {
	// §8.2.3: page-level ASLR removes contiguity. Individual physical pages
	// can still collide across samples (true single-page matches — the
	// paper's "flag any page-level fingerprint as a potential match"), but a
	// stitcher demanding an aligned run of ≥2 matching pages never fires,
	// because scattering makes consistent relative offsets vanishingly rare.
	m := drammodel.New(10)
	mem, err := osmodel.NewMemory(4096, 321)
	if err != nil {
		t.Fatal(err)
	}
	s := newStitcher(t, Config{MinOverlap: 2})
	const samples = 20
	for trial := uint64(1); trial <= samples; trial++ {
		pl, err := mem.PlaceScattered(8)
		if err != nil {
			t.Fatal(err)
		}
		pages := make([]bitset.Sparse, len(pl.Phys))
		for i, phys := range pl.Phys {
			fp, err := m.PageErrors(uint64(phys), 0.01, trial)
			if err != nil {
				t.Fatal(err)
			}
			pages[i] = fp
		}
		if _, err := s.Add(Sample{Pages: pages}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != samples {
		t.Fatalf("Count = %d of %d samples — ASLR defense failed against 2-page alignment", s.Count(), samples)
	}
}

func TestEmptyPageFingerprintsIgnored(t *testing.T) {
	s := newStitcher(t, Config{})
	empty := Sample{Pages: []bitset.Sparse{nil, nil}}
	if _, err := s.Add(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(empty); err != nil {
		t.Fatal(err)
	}
	// Two all-empty samples must not merge on vacuous similarity.
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2 — empty fingerprints matched", s.Count())
	}
}
