package fingerprint

import (
	"bytes"
	"strings"
	"testing"

	"probablecause/internal/bitset"
)

func TestDBRoundTrip(t *testing.T) {
	db := NewDB(0.07)
	db.Add("alpha", bitset.FromPositions(1000, []uint32{1, 2, 3}))
	db.Add("beta", bitset.FromPositions(2048, []uint32{100, 2000}))
	db.Add("", bitset.New(8)) // empty name, empty fingerprint

	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d", got.Len())
	}
	if th := got.threshold; th < 0.069 || th > 0.071 {
		t.Fatalf("threshold = %v", th)
	}
	for i, e := range got.Entries() {
		want := db.Entries()[i]
		if e.Name != want.Name || !e.FP.Equal(want.FP) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestDBEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewDB(DefaultThreshold).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestReadDBRejectsGarbage(t *testing.T) {
	cases := []string{
		"",       // empty
		"NOTDB1", // bad magic
		"PCDB01", // truncated header
		"PCDB01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00", // count 1, no entry
	}
	for i, c := range cases {
		if _, err := ReadDB(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadDBRejectsImplausibleCounts(t *testing.T) {
	// Magic + count of 2^60 entries.
	data := append([]byte("PCDB01"), make([]byte, 12)...)
	data[6+7] = 0x10 // huge count
	if _, err := ReadDB(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestDBRoundTripPreservesIdentification(t *testing.T) {
	db := NewDB(DefaultThreshold)
	fp := bitset.FromPositions(32768, []uint32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100,
		110, 120, 130, 140, 150, 160, 170, 180, 190, 200})
	db.Add("victim", fp)

	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	es := fp.Clone()
	es.Set(9999) // extra error bit
	name, _, ok := loaded.Identify(es)
	if !ok || name != "victim" {
		t.Fatalf("Identify after round trip = (%q, %v)", name, ok)
	}
}
