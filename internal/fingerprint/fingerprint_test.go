package fingerprint

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"probablecause/internal/bitset"
)

func set(n int, pos ...uint32) *bitset.Set {
	return bitset.FromPositions(n, pos)
}

func TestErrorString(t *testing.T) {
	exact := []byte{0xFF, 0x00}
	approx := []byte{0xFE, 0x01}
	es, err := ErrorString(approx, exact)
	if err != nil {
		t.Fatal(err)
	}
	pos := es.Positions()
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 8 {
		t.Fatalf("error positions = %v, want [0 8]", pos)
	}
}

func TestErrorStringLengthMismatch(t *testing.T) {
	if _, err := ErrorString([]byte{1}, []byte{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCharacterizeIntersects(t *testing.T) {
	exact := []byte{0x00, 0x00}
	// Trial 1 flips bits {0, 3, 9}; trial 2 flips {0, 9, 12}; trial 3 {0, 9}.
	a1 := []byte{0x09, 0x02}
	a2 := []byte{0x01, 0x12}
	a3 := []byte{0x01, 0x02}
	fp, err := Characterize(exact, a1, a2, a3)
	if err != nil {
		t.Fatal(err)
	}
	pos := fp.Positions()
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 9 {
		t.Fatalf("fingerprint positions = %v, want [0 9]", pos)
	}
}

func TestCharacterizeNeedsResults(t *testing.T) {
	if _, err := Characterize([]byte{0}); err == nil {
		t.Fatal("Characterize with no results accepted")
	}
}

func TestDistanceIdenticalSetsIsZero(t *testing.T) {
	s := set(100, 1, 5, 9)
	if d := Distance(s, s.Clone()); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestDistanceSubsetIsZero(t *testing.T) {
	// The paper's key property: a fingerprint at 1% error matched against an
	// output at 10% error still scores 0 as long as the fingerprint bits are
	// all present in the output's error pattern.
	fp := set(1000, 10, 20, 30)
	es := set(1000, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	if d := Distance(es, fp); d != 0 {
		t.Fatalf("subset distance = %v, want 0", d)
	}
}

func TestDistanceDisjointIsOne(t *testing.T) {
	fp := set(1000, 1, 2, 3)
	es := set(1000, 10, 20, 30, 40)
	if d := Distance(es, fp); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestDistancePartialOverlap(t *testing.T) {
	fp := set(1000, 1, 2, 3, 4) // smaller set is treated as fingerprint
	es := set(1000, 1, 2, 50, 60, 70)
	// fp has 4 bits, 2 missing from es: distance 0.5... but es has 5 bits,
	// fp has 4, so fp is the "fingerprint". 2/4 = 0.5.
	if d := Distance(es, fp); d != 0.5 {
		t.Fatalf("distance = %v, want 0.5", d)
	}
}

func TestDistanceSymmetricInArgumentOrder(t *testing.T) {
	a := set(1000, 1, 2, 3, 4, 5, 6, 7)
	b := set(1000, 1, 2, 3)
	if Distance(a, b) != Distance(b, a) {
		t.Fatal("distance not symmetric under swapped arguments")
	}
}

func TestDistanceDegenerateCases(t *testing.T) {
	empty := set(100)
	nonEmpty := set(100, 5)
	if d := Distance(empty, empty.Clone()); d != 0 {
		t.Fatalf("both empty = %v, want 0", d)
	}
	if d := Distance(nonEmpty, empty); d != 1 {
		t.Fatalf("one empty = %v, want 1", d)
	}
	if d := Distance(empty, nonEmpty); d != 1 {
		t.Fatalf("one empty (swapped) = %v, want 1", d)
	}
}

func TestDistanceRobustToApproximationMismatchVsHamming(t *testing.T) {
	// Reproduce §5.2's argument. Chip A characterized at 99% accuracy:
	// fingerprint = 10 bits. An output from A at 95% accuracy has those 10
	// bits plus 40 more. An output from chip B at 99% accuracy has 10
	// entirely different bits.
	n := 1000
	fpA := set(n, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	outA := fpA.Clone()
	for i := uint32(100); i < 140; i++ {
		outA.Set(int(i))
	}
	outB := set(n, 200, 201, 202, 203, 204, 205, 206, 207, 208, 209)

	// Modified Jaccard: same-chip distance 0, other-chip distance 1.
	if d := Distance(outA, fpA); d != 0 {
		t.Fatalf("jaccard same-chip = %v", d)
	}
	if d := Distance(outB, fpA); d != 1 {
		t.Fatalf("jaccard other-chip = %v", d)
	}

	// Hamming: the same-chip output at higher error looks *farther* than the
	// other-chip output — the failure mode the paper describes.
	hSame := HammingDistance(outA, fpA)
	hOther := HammingDistance(outB, fpA)
	if hSame <= hOther {
		t.Fatalf("expected Hamming to misrank: same=%v other=%v", hSame, hOther)
	}
}

func TestDBIdentify(t *testing.T) {
	db := NewDB(DefaultThreshold)
	mkRange := func(lo, n uint32) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = lo + uint32(i)
		}
		return out
	}
	db.Add("chipA", set(1000, mkRange(1, 20)...))
	db.Add("chipB", set(1000, mkRange(101, 20)...))

	// Output from chipB with one fingerprint bit missing and extra noise:
	// distance 1/20 = 0.05 < threshold 0.1.
	es := set(1000, append(mkRange(101, 19), 500, 600)...)
	name, idx, ok := db.Identify(es)
	if !ok || name != "chipB" || idx != 1 {
		t.Fatalf("Identify = (%q, %d, %v), want (chipB, 1, true)", name, idx, ok)
	}

	// Unknown device: no match.
	if _, _, ok := db.Identify(set(1000, 900, 901, 902, 903)); ok {
		t.Fatal("identified an unknown device")
	}
}

func TestDBIdentifyBest(t *testing.T) {
	db := NewDB(DefaultThreshold)
	db.Add("a", set(100, 1, 2, 3, 4))
	db.Add("b", set(100, 1, 2, 3, 50))
	es := set(100, 1, 2, 3, 4, 60)
	name, idx, d := db.IdentifyBest(es)
	if name != "a" || idx != 0 || d != 0 {
		t.Fatalf("IdentifyBest = (%q, %d, %v)", name, idx, d)
	}
	// Empty DB.
	empty := NewDB(DefaultThreshold)
	if _, idx, _ := empty.IdentifyBest(es); idx != -1 {
		t.Fatal("IdentifyBest on empty DB should return index -1")
	}
}

func TestClustererGroupsByDevice(t *testing.T) {
	c := NewClusterer(DefaultThreshold)
	// Device 1 outputs share a 10-bit core with small per-output noise.
	core1 := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	core2 := []uint32{201, 202, 203, 204, 205, 206, 207, 208, 209, 210}
	mk := func(core []uint32, extra ...uint32) *bitset.Set {
		return set(1000, append(append([]uint32{}, core...), extra...)...)
	}
	c1 := c.Add(mk(core1, 500))
	c2 := c.Add(mk(core2, 600))
	c3 := c.Add(mk(core1, 700))
	c4 := c.Add(mk(core2))
	if c1 != c3 || c2 != c4 || c1 == c2 {
		t.Fatalf("cluster assignment wrong: %d %d %d %d", c1, c2, c3, c4)
	}
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2", c.Count())
	}
	if c.Size(c1) != 2 || c.Size(c2) != 2 {
		t.Fatalf("sizes = %d, %d; want 2, 2", c.Size(c1), c.Size(c2))
	}
}

func TestClustererRefinesByIntersection(t *testing.T) {
	c := NewClusterer(DefaultThreshold)
	c.Add(set(1000, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 99)) // 99 is noise
	j := c.Add(set(1000, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 77))
	fp := c.Fingerprint(j)
	if fp.Get(99) || fp.Get(77) {
		t.Fatal("noise bits survived intersection refinement")
	}
	if fp.Count() != 10 {
		t.Fatalf("refined fingerprint has %d bits, want 10", fp.Count())
	}
}

// Property: distance is always in [0, 1].
func TestQuickDistanceRange(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := bitset.New(n), bitset.New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		d := Distance(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding extra error bits to the larger set never increases the
// distance (the mismatched-approximation robustness property).
func TestQuickDistanceMonotoneUnderSuperset(t *testing.T) {
	f := func(xs, extra []uint16) bool {
		const n = 1 << 16
		if len(xs) == 0 {
			return true
		}
		fp := bitset.New(n)
		for _, x := range xs {
			fp.Set(int(x))
		}
		es := fp.Clone()
		d0 := Distance(es, fp)
		for _, e := range extra {
			es.Set(int(e))
		}
		// es is a superset of fp both before and after; fp stays the smaller
		// or equal set, so distance must remain 0.
		return d0 == 0 && Distance(es, fp) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: characterization fingerprint is a subset of every error string.
func TestQuickCharacterizeSubset(t *testing.T) {
	f := func(a, b, c []byte) bool {
		n := 16
		pad := func(d []byte) []byte {
			out := make([]byte, n)
			copy(out, d)
			return out
		}
		exact := make([]byte, n)
		pa, pb, pc := pad(a), pad(b), pad(c)
		fp, err := Characterize(exact, pa, pb, pc)
		if err != nil {
			return false
		}
		for _, approx := range [][]byte{pa, pb, pc} {
			es, err := ErrorString(approx, exact)
			if err != nil || !fp.IsSubset(es) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cluster fingerprint only shrinks (intersection refinement) and
// remains a subset of the founding error string.
func TestQuickClustererShrinks(t *testing.T) {
	f := func(xs []uint16, extras [][]uint16) bool {
		const n = 1 << 16
		if len(xs) == 0 {
			return true
		}
		core := bitset.New(n)
		for _, x := range xs {
			core.Set(int(x))
		}
		c := NewClusterer(DefaultThreshold)
		first := core.Clone()
		j := c.Add(first)
		prevCount := c.Fingerprint(j).Count()
		for _, ex := range extras {
			es := core.Clone()
			for _, e := range ex {
				es.Set(int(e))
			}
			c.Add(es)
			fp := c.Fingerprint(j)
			if !fp.IsSubset(first) {
				return false
			}
			if fp.Count() > prevCount {
				return false
			}
			prevCount = fp.Count()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDistance(t *testing.T) {
	a := bitset.NewSparse([]uint32{1, 2, 3, 4})
	b := bitset.NewSparse([]uint32{1, 2, 50, 60, 70})
	if d := SparseDistance(a, b); d != 0.5 {
		t.Fatalf("distance = %v, want 0.5", d)
	}
	if d := SparseDistance(b, a); d != 0.5 {
		t.Fatal("sparse distance not symmetric")
	}
	if d := SparseDistance(nil, nil); d != 0 {
		t.Fatalf("both empty = %v", d)
	}
	if d := SparseDistance(nil, a); d != 1 {
		t.Fatalf("one empty = %v", d)
	}
	// Must agree with the dense metric.
	da, db := a.Dense(100), b.Dense(100)
	if SparseDistance(a, b) != Distance(da, db) {
		t.Fatal("sparse and dense metrics disagree")
	}
}

func TestHammingDistanceEdges(t *testing.T) {
	if d := HammingDistance(set(0), set(0)); d != 0 {
		t.Fatalf("zero-length Hamming = %v", d)
	}
	a := set(8, 0, 1)
	b := set(8, 1, 2)
	if d := HammingDistance(a, b); d != 0.25 {
		t.Fatalf("Hamming = %v, want 0.25", d)
	}
}

func TestDBWriteToRejectsHugeName(t *testing.T) {
	db := NewDB(DefaultThreshold)
	db.Add(strings.Repeat("x", 70000), set(8, 1))
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err == nil {
		t.Fatal("70000-char name accepted")
	}
}

func TestDBGetRemove(t *testing.T) {
	db := NewDB(DefaultThreshold)
	fp := set(100, 1, 2)
	db.Add("a", fp)
	db.Add("b", set(100, 3))
	got, ok := db.Get("a")
	if !ok || !got.Equal(fp) {
		t.Fatal("Get(a) failed")
	}
	if _, ok := db.Get("missing"); ok {
		t.Fatal("Get(missing) succeeded")
	}
	if !db.Remove("a") {
		t.Fatal("Remove(a) failed")
	}
	if db.Remove("a") {
		t.Fatal("double Remove succeeded")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	if _, ok := db.Get("b"); !ok {
		t.Fatal("Remove disturbed other entries")
	}
}
