package fingerprint

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
)

// Sliced-identify metrics: blocks skipped by the cardinality-bound prune
// (entries whose words were never touched) and the batch sizes the block
// kernel verified per sweep, so /metrics shows how much work slicing and
// pruning save.
var (
	cIdentifyPruned = obs.C("fingerprint.identify.pruned")
	hBlockBatch     = obs.H("fingerprint.identify.block_batch")
)

// SlicedConfig parameterizes a SlicedDB.
type SlicedConfig struct {
	// Index configures the LSH candidate stage (scheme, fallback, workers,
	// multi-probe), exactly as for IndexedDB.
	Index IndexedConfig
	// BlockEntries is the sliced block width B; 0 selects
	// bitset.DefaultSlicedEntries.
	BlockEntries int
}

// SlicedDB is an IndexedDB whose fallback scan runs over a band-major
// bit-sliced copy of the fingerprints (bitset.SlicedArena) instead of the
// entry slice. Candidate verification is unchanged — LSH candidates are few
// and scattered, so the scalar kernel already serves them well — but the
// fallback, which at 100k entries dominates every miss, becomes a blocked
// sweep: one pass over the query's words verifies a whole block, and the
// cardinality-bound prune skips blocks whose threshold is provably
// unreachable without touching their words.
//
// The verdict contract is bit-identical to DB/IndexedDB: the block kernel
// returns the exact (minCard, maxCard, diff) triples the scalar
// MinCardAndNotCount returns, the distance division runs on the same
// integers, and blocks are visited in add order. Two scans differ only in
// which is faster.
//
// The prune is sound only for Identify's first-match semantics (a miss
// reports no distance). Decide and IdentifyBest promise the exact global
// best on a miss, and a pruned block — excluded from *matching* — can still
// hold the minimum distance, so their fallback sweeps every block unpruned.
//
// SlicedDB requires all fingerprints to share one bit length (the corpus
// invariant every experiment and the serving layer already maintain); the
// arena panics on a mismatched Add.
type SlicedDB struct {
	x     *IndexedDB
	arena *bitset.SlicedArena
}

// NewSlicedDB returns an empty sliced database with the given identification
// threshold.
func NewSlicedDB(threshold float64, cfg SlicedConfig) (*SlicedDB, error) {
	return SliceDB(NewDB(threshold), cfg)
}

// SliceDB builds the LSH index and the bit-sliced arena over an existing
// database and returns the sliced view. The DB is shared, not copied; as
// with IndexDB, entries must not be added directly to db afterwards.
func SliceDB(db *DB, cfg SlicedConfig) (*SlicedDB, error) {
	x, err := IndexDB(db, cfg.Index)
	if err != nil {
		return nil, err
	}
	arena := bitset.NewSlicedArena(0, cfg.BlockEntries)
	for _, e := range db.entries {
		if n := db.entries[0].FP.Len(); e.FP.Len() != n {
			return nil, fmt.Errorf("fingerprint: sliced backend needs one bit length, have %d and %d", n, e.FP.Len())
		}
		arena.Add(e.FP)
	}
	return &SlicedDB{x: x, arena: arena}, nil
}

// Add registers a fingerprint under a name, indexes its signature, and packs
// it into the sliced arena.
func (s *SlicedDB) Add(name string, fp *bitset.Set) {
	s.x.Add(name, fp)
	s.arena.Add(fp)
}

// Len returns the number of fingerprints in the database.
func (s *SlicedDB) Len() int { return s.x.db.Len() }

// DB returns the underlying database (shared, not copied).
func (s *SlicedDB) DB() *DB { return s.x.db }

// kernelDistance converts one block-kernel triple into Algorithm 3's
// distance, replicating distance()'s arithmetic exactly: same integers, same
// division, bit-identical float64.
func kernelDistance(r bitset.KernelResult) float64 {
	if r.MinCard == 0 {
		if r.MaxCard == 0 {
			return 0
		}
		return 1
	}
	return float64(r.Diff) / float64(r.MinCard)
}

// KernelDistance is kernelDistance for external verification backends (the
// tiered store's mmap'd segments): the same integers, the same division,
// bit-identical float64 — the contract that keeps segment verdicts equal to
// in-memory ones.
func KernelDistance(r bitset.KernelResult) float64 { return kernelDistance(r) }

// pruned reports whether no entry of the block can sit under the threshold,
// from the block's cached cardinalities and one sweep over its OR-union
// (1/B of the words a full kernel pass reads).
//
// An entry matches iff d = (minCard − |q∩e|)/minCard < t with
// minCard = min(|e|, |q|), i.e. iff |q∩e| > minCard·(1−t). Every member's
// intersection is bounded by I = |q ∩ union|, and every member's minCard is
// at least cLow = min(blockMinCard, |q|), so when
//
//	cLow·(1−t) ≥ I
//
// no member can cross the threshold and the whole block is skipped. t is
// nudged up by 1e-9 relative slack so float rounding can only make the prune
// more conservative, never unsound. An empty query never prunes: cLow = 0
// would discard the d = 0 match an empty entry owes it.
func (s *SlicedDB) pruned(blk *bitset.SlicedBlock, q *bitset.Set, qc int) bool {
	if qc == 0 {
		return false
	}
	cLow := blk.MinCard()
	if qc < cLow {
		cLow = qc
	}
	tUp := s.x.db.threshold * (1 + 1e-9)
	return float64(cLow)*(1-tUp) >= float64(blk.UnionAndCount(q))
}

// Identify implements Algorithm 2 over the candidate buckets, exactly as
// IndexedDB.Identify; on a candidate miss with the fallback enabled, the
// verified scan runs over the sliced arena with block pruning. First-match
// semantics make the prune safe: a pruned block by construction holds no
// entry under the threshold, so the first match found is the first match
// the dense scan would find.
func (s *SlicedDB) Identify(errorString *bitset.Set) (name string, index int, ok bool) {
	cands := s.x.candidates(errorString)
	for k, i := range cands {
		if !s.x.db.alive(i) {
			continue
		}
		e := s.x.db.entries[i]
		if Distance(errorString, e.FP) < s.x.db.threshold {
			if obs.On() {
				cIdentifyHit.Inc()
				if s.x.ambiguousAmong(errorString, cands[k+1:]) {
					cIdentifyAmbig.Inc()
				}
			}
			return e.Name, i, true
		}
	}
	if !s.x.cfg.NoFallback {
		if obs.On() {
			cIndexFallbacks.Inc()
		}
		return s.prunedFirstMatch(errorString)
	}
	if obs.On() {
		cIdentifyMiss.Inc()
	}
	return "", -1, false
}

// prunedFirstMatch is DB.Identify over the sliced arena: blocks in add
// order, skipping those the cardinality bound excludes, block kernel on the
// rest, first entry under the threshold wins.
func (s *SlicedDB) prunedFirstMatch(q *bitset.Set) (name string, index int, ok bool) {
	db := s.x.db
	qc := q.Count()
	per := s.arena.BlockEntries()
	var dst []bitset.KernelResult
	for bi := 0; bi < s.arena.NumBlocks(); bi++ {
		blk := s.arena.Block(bi)
		if s.pruned(blk, q, qc) {
			if obs.On() {
				cIdentifyPruned.Inc()
			}
			continue
		}
		dst = blk.MinCardAndNotCounts(q, dst)
		if obs.On() {
			hBlockBatch.Observe(int64(blk.Len()))
		}
		for j, r := range dst {
			i := bi*per + j
			if !db.alive(i) {
				continue
			}
			if kernelDistance(r) < db.threshold {
				if obs.On() {
					cIdentifyHit.Inc()
					if db.ambiguousAfter(q, i) {
						cIdentifyAmbig.Inc()
					}
				}
				return db.entries[i].Name, i, true
			}
		}
	}
	if obs.On() {
		cIdentifyMiss.Inc()
	}
	return "", -1, false
}

// IdentifyBest returns the minimum-distance entry; see IndexedDB.IdentifyBest
// for the exactness contract.
func (s *SlicedDB) IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64) {
	v := s.Decide(errorString)
	return v.Name, v.Index, v.Distance
}

// Decide is IndexedDB.Decide with the sliced fallback: candidates first,
// then — when none matches and the fallback is enabled — a full, unpruned
// block-kernel sweep, so a reported miss carries the true global best. The
// Matches caveat of the indexed path applies unchanged.
func (s *SlicedDB) Decide(errorString *bitset.Set) Verdict {
	v := s.decideRaw(errorString)
	recordVerdict(v)
	return v
}

func (s *SlicedDB) decideRaw(errorString *bitset.Set) Verdict {
	v := Verdict{Index: -1, Distance: 2}
	for _, i := range s.x.candidates(errorString) {
		if !s.x.db.alive(i) {
			continue
		}
		e := s.x.db.entries[i]
		d := Distance(errorString, e.FP)
		if d < s.x.db.threshold {
			v.Matches++
		}
		if d < v.Distance {
			v.Name, v.Index, v.Distance = e.Name, i, d
		}
	}
	if v.Matches == 0 && !s.x.cfg.NoFallback {
		if obs.On() {
			cIndexFallbacks.Inc()
		}
		return s.sweepDecide(errorString)
	}
	return v
}

// sweepDecide is DB.decideRaw over the sliced arena: every block, no prune —
// exact best-on-miss reporting cannot exclude a block merely because nothing
// in it matches, since the global minimum distance may still live there.
func (s *SlicedDB) sweepDecide(q *bitset.Set) Verdict {
	db := s.x.db
	v := Verdict{Index: -1, Distance: 2}
	per := s.arena.BlockEntries()
	var dst []bitset.KernelResult
	for bi := 0; bi < s.arena.NumBlocks(); bi++ {
		blk := s.arena.Block(bi)
		dst = blk.MinCardAndNotCounts(q, dst)
		if obs.On() {
			hBlockBatch.Observe(int64(blk.Len()))
		}
		for j, r := range dst {
			i := bi*per + j
			if !db.alive(i) {
				continue
			}
			d := kernelDistance(r)
			if d < db.threshold {
				v.Matches++
			}
			if d < v.Distance {
				v.Name, v.Index, v.Distance = db.entries[i].Name, i, d
			}
		}
	}
	return v
}

// firstMatch is the sliced analogue of IndexedDB.firstMatch, for callers
// that aggregate decisions without obs counters.
func (s *SlicedDB) firstMatch(errorString *bitset.Set) (name string, index int, ok bool) {
	for _, i := range s.x.candidates(errorString) {
		if !s.x.db.alive(i) {
			continue
		}
		e := s.x.db.entries[i]
		if Distance(errorString, e.FP) < s.x.db.threshold {
			return e.Name, i, true
		}
	}
	if !s.x.cfg.NoFallback {
		if obs.On() {
			cIndexFallbacks.Inc()
		}
		qc := errorString.Count()
		per := s.arena.BlockEntries()
		var dst []bitset.KernelResult
		for bi := 0; bi < s.arena.NumBlocks(); bi++ {
			blk := s.arena.Block(bi)
			if s.pruned(blk, errorString, qc) {
				if obs.On() {
					cIdentifyPruned.Inc()
				}
				continue
			}
			dst = blk.MinCardAndNotCounts(errorString, dst)
			for j, r := range dst {
				i := bi*per + j
				if !s.x.db.alive(i) {
					continue
				}
				if kernelDistance(r) < s.x.db.threshold {
					return s.x.db.entries[i].Name, i, true
				}
			}
		}
	}
	return "", -1, false
}

// ParallelIdentify runs Identify across a bounded worker pool; see
// DB.ParallelIdentify for the determinism contract.
func (s *SlicedDB) ParallelIdentify(errorStrings []*bitset.Set, workers int) []Match {
	out := make([]Match, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		name, idx, ok := s.Identify(errorStrings[i])
		out[i] = Match{Name: name, Index: idx, OK: ok}
	})
	return out
}

// ParallelDecide runs Decide across a bounded worker pool; see
// DB.ParallelDecide.
func (s *SlicedDB) ParallelDecide(errorStrings []*bitset.Set, workers int) []Verdict {
	out := make([]Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		out[i] = s.Decide(errorStrings[i])
	})
	return out
}

var _ Identifier = (*SlicedDB)(nil)

// String renders a small summary for logs.
func (s *SlicedDB) String() string {
	return fmt.Sprintf("sliceddb(entries=%d, blocks=%d×%d, bands=%d, rows=%d, probes=%v, fallback=%v)",
		s.x.db.Len(), s.arena.NumBlocks(), s.arena.BlockEntries(),
		s.x.cfg.Scheme.Bands, s.x.cfg.Scheme.Rows, s.x.index.MultiProbe(), !s.x.cfg.NoFallback)
}
