package fingerprint

import (
	"probablecause/internal/bitset"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
)

// Verdict is the full outcome of one identification decision: the
// best-matching entry, its distance, and how many database entries sat under
// the threshold. It subsumes Identify (OK ⇔ Matches ≥ 1) and IdentifyBest
// (Name/Index/Distance) and adds the ambiguity verdict the serving layer and
// the pcause CLI surface: Matches ≥ 2 means the error string matched more
// than one registered fingerprint, so the name returned is a guess between
// colliding devices (Table 2's false-positive regime), not an identification.
type Verdict struct {
	// Name and Index locate the minimum-distance entry. Index is -1 when the
	// database is empty; for ShardedDB it is the entry's stable add-order id
	// rather than a dense slice index (see ShardedDB).
	Name  string
	Index int
	// Distance is the modified Jaccard distance (Algorithm 3) to the best
	// entry; 2 (above any real distance) when the database is empty.
	Distance float64
	// Matches counts entries under the identification threshold.
	Matches int
}

// OK reports whether the best entry is under the threshold — Algorithm 2's
// accept decision.
func (v Verdict) OK() bool { return v.Matches >= 1 }

// Ambiguous reports whether more than one entry matched.
func (v Verdict) Ambiguous() bool { return v.Matches >= 2 }

// recordVerdict updates the shared identify hit/miss/ambiguous counters for
// one decision. Callers that compose several raw scans (ShardedDB) record
// exactly once per query.
func recordVerdict(v Verdict) {
	if !obs.On() {
		return
	}
	switch {
	case v.Matches == 0:
		cIdentifyMiss.Inc()
	case v.Matches == 1:
		cIdentifyHit.Inc()
	default:
		cIdentifyHit.Inc()
		cIdentifyAmbig.Inc()
	}
}

// Decide runs the full identification decision against the database: one
// dense scan yielding the best entry, its distance, and the number of
// entries under the threshold.
func (db *DB) Decide(errorString *bitset.Set) Verdict {
	v := db.decideRaw(errorString)
	recordVerdict(v)
	return v
}

// decideRaw is Decide without the obs verdict counters, for callers that
// aggregate several scans into one decision.
func (db *DB) decideRaw(errorString *bitset.Set) Verdict {
	v := Verdict{Index: -1, Distance: 2} // above any possible distance
	for i, e := range db.entries {
		if !db.alive(i) {
			continue
		}
		d := Distance(errorString, e.FP)
		if d < db.threshold {
			v.Matches++
		}
		if d < v.Distance {
			v.Name, v.Index, v.Distance = e.Name, i, d
		}
	}
	return v
}

// firstMatch is Algorithm 2's accept loop without obs counters: the first
// entry under the threshold in add order.
func (db *DB) firstMatch(errorString *bitset.Set) (name string, index int, ok bool) {
	for i, e := range db.entries {
		if !db.alive(i) {
			continue
		}
		if Distance(errorString, e.FP) < db.threshold {
			return e.Name, i, true
		}
	}
	return "", -1, false
}

// Decide is DB.Decide over the candidate buckets. When no candidate sits
// under the threshold and the fallback is enabled, the verified full scan
// decides instead, so a reported miss carries the true global best and a
// sub-threshold match is never lost to index recall. As with Identify, the
// Matches count inspects candidates only on the indexed path; with multiple
// sub-threshold entries it can undercount relative to a dense scan if the
// index misses one of them.
func (x *IndexedDB) Decide(errorString *bitset.Set) Verdict {
	v := x.decideRaw(errorString)
	recordVerdict(v)
	return v
}

func (x *IndexedDB) decideRaw(errorString *bitset.Set) Verdict {
	v := Verdict{Index: -1, Distance: 2}
	for _, i := range x.candidates(errorString) {
		if !x.db.alive(i) {
			continue
		}
		e := x.db.entries[i]
		d := Distance(errorString, e.FP)
		if d < x.db.threshold {
			v.Matches++
		}
		if d < v.Distance {
			v.Name, v.Index, v.Distance = e.Name, i, d
		}
	}
	if v.Matches == 0 && !x.cfg.NoFallback {
		if obs.On() {
			cIndexFallbacks.Inc()
		}
		return x.db.decideRaw(errorString)
	}
	return v
}

// firstMatch is the indexed analogue of DB.firstMatch: first candidate under
// the threshold, with the verified fallback scan when no candidate matches.
func (x *IndexedDB) firstMatch(errorString *bitset.Set) (name string, index int, ok bool) {
	for _, i := range x.candidates(errorString) {
		if !x.db.alive(i) {
			continue
		}
		e := x.db.entries[i]
		if Distance(errorString, e.FP) < x.db.threshold {
			return e.Name, i, true
		}
	}
	if !x.cfg.NoFallback {
		if obs.On() {
			cIndexFallbacks.Inc()
		}
		return x.db.firstMatch(errorString)
	}
	return "", -1, false
}

// ParallelDecide runs Decide for every error string across a bounded worker
// pool and returns the verdicts in input order, with the same determinism
// contract as ParallelIdentify: the database is only read, so each slot
// equals a serial Decide call.
func (db *DB) ParallelDecide(errorStrings []*bitset.Set, workers int) []Verdict {
	out := make([]Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		out[i] = db.Decide(errorStrings[i])
	})
	return out
}

// ParallelDecide runs Decide for every error string across a bounded worker
// pool; see DB.ParallelDecide.
func (x *IndexedDB) ParallelDecide(errorStrings []*bitset.Set, workers int) []Verdict {
	out := make([]Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		out[i] = x.Decide(errorStrings[i])
	})
	return out
}
