package fingerprint

import (
	"fmt"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/minhash"
	"probablecause/internal/prng"
)

// mkChipWorld simulates nChips devices: each gets a fingerprint (intersection
// of two trials) and nOutputs fresh error strings, built from a stable
// per-chip volatile set plus per-trial noise — the same structure the real
// corpus has, at unit-test scale.
func mkChipWorld(t testing.TB, nChips, nOutputs, bits int, seed uint64) (fps []*bitset.Set, outs []*bitset.Set, chipOf []int) {
	t.Helper()
	errString := func(chip, trial int) *bitset.Set {
		rng := prng.New(seed ^ uint64(chip)<<20 ^ uint64(trial))
		s := bitset.New(bits)
		// Stable volatile set: pure function of (chip, position).
		for i := 0; i < bits; i++ {
			if prng.Uniform01(prng.Hash(seed, uint64(chip), uint64(i))) < 0.01 {
				s.Set(i)
			}
		}
		// Trial noise: ~2% of the volatile bits flicker per output.
		s.ForEach(func(i int) bool {
			if rng.Float64() < 0.02 {
				defer s.Clear(i)
			}
			return true
		})
		return s
	}
	for c := 0; c < nChips; c++ {
		fp := errString(c, 1000).And(errString(c, 1001))
		fps = append(fps, fp)
		for o := 0; o < nOutputs; o++ {
			outs = append(outs, errString(c, o))
			chipOf = append(chipOf, c)
		}
	}
	return fps, outs, chipOf
}

func TestIndexedIdentifyMatchesScan(t *testing.T) {
	fps, outs, _ := mkChipWorld(t, 12, 4, 4096, 0x1D)
	db := NewDB(DefaultThreshold)
	for i, fp := range fps {
		db.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	ix, err := IndexDB(db, IndexedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for k, out := range outs {
		sn, si, sok := db.Identify(out)
		in, ii, iok := ix.Identify(out)
		if sn != in || si != ii || sok != iok {
			t.Fatalf("output %d: scan (%s,%d,%v) != indexed (%s,%d,%v)", k, sn, si, sok, in, ii, iok)
		}
		bn, bi, bd := db.IdentifyBest(out)
		xn, xi, xd := ix.IdentifyBest(out)
		if bn != xn || bi != xi || bd != xd {
			t.Fatalf("output %d: best scan (%s,%d,%g) != indexed (%s,%d,%g)", k, bn, bi, bd, xn, xi, xd)
		}
	}
	// Unknown device: must miss on both paths (fallback covers the scan).
	unknownFPs, _, _ := mkChipWorld(t, 1, 0, 4096, 0xFFFF)
	if _, _, ok := ix.Identify(unknownFPs[0]); ok {
		t.Fatal("indexed identify matched an unknown device")
	}
}

func TestIndexedAddMatchesBulkBuild(t *testing.T) {
	fps, outs, _ := mkChipWorld(t, 8, 2, 4096, 0x2E)
	bulkDB := NewDB(DefaultThreshold)
	for i, fp := range fps {
		bulkDB.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	bulk, err := IndexDB(bulkDB, IndexedConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	incr, err := NewIndexedDB(DefaultThreshold, IndexedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range fps {
		incr.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	for k, out := range outs {
		bn, bi, bok := bulk.Identify(out)
		in, ii, iok := incr.Identify(out)
		if bn != in || bi != ii || bok != iok {
			t.Fatalf("output %d: bulk (%s,%d,%v) != incremental (%s,%d,%v)", k, bn, bi, bok, in, ii, iok)
		}
	}
}

// TestParallelIdentifyMatchesSerial is the determinism property the batch
// API promises: for every worker count, slot i equals a serial Identify of
// input i, on both the scan and indexed paths.
func TestParallelIdentifyMatchesSerial(t *testing.T) {
	fps, outs, chipOf := mkChipWorld(t, 10, 6, 4096, 0x3F)
	db := NewDB(DefaultThreshold)
	for i, fp := range fps {
		db.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	ix, err := IndexDB(db, IndexedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Match, len(outs))
	for i, out := range outs {
		n, idx, ok := db.Identify(out)
		want[i] = Match{Name: n, Index: idx, OK: ok}
		if !ok || idx != chipOf[i] {
			t.Fatalf("serial identify of output %d: (%s,%d,%v), want chip %d", i, n, idx, ok, chipOf[i])
		}
	}
	for _, impl := range []Identifier{db, ix} {
		for _, workers := range []int{1, 2, 8} {
			got := impl.ParallelIdentify(outs, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%T workers=%d: slot %d = %+v, want %+v", impl, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestIndexedNoFallbackMisses(t *testing.T) {
	// A scheme so selective that the (deliberately noisy) query signature
	// shares no band: verify the NoFallback path reports a miss while the
	// fallback path still finds the entry.
	fps, _, _ := mkChipWorld(t, 1, 0, 4096, 0x51)
	mk := func(noFallback bool) *IndexedDB {
		db := NewDB(DefaultThreshold)
		db.Add("a", fps[0])
		ix, err := IndexDB(db, IndexedConfig{
			Scheme:     minhash.Scheme{Bands: 1, Rows: 32, Seed: 1},
			NoFallback: noFallback,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	// Superset query: scan distance is exactly 0 (every fingerprint bit is
	// present), but the extra bits perturb enough of the 32 minhash rows that
	// the single band misses.
	query := fps[0].Clone()
	for i := 0; i < 40; i++ {
		query.Set(2000 + 7*i)
	}
	if sameBand := mk(true).index.Candidates(mk(true).sign(query)); len(sameBand) != 0 {
		t.Skip("seed produced a colliding band; fallback path not exercised")
	}
	if _, _, ok := mk(true).Identify(query); ok {
		t.Fatal("NoFallback identify found a match without a candidate")
	}
	if _, _, ok := mk(false).Identify(query); !ok {
		t.Fatal("fallback identify failed to run the verified scan")
	}
}

func TestDBGetRemoveWithNameIndex(t *testing.T) {
	db := NewDB(DefaultThreshold)
	a := bitset.FromPositions(64, []uint32{1})
	b := bitset.FromPositions(64, []uint32{2})
	c := bitset.FromPositions(64, []uint32{3})
	db.Add("a", a)
	db.Add("dup", b)
	db.Add("dup", c)
	if fp, ok := db.Get("dup"); !ok || !fp.Equal(b) {
		t.Fatal("Get must return the first entry added under a name")
	}
	if !db.Remove("dup") {
		t.Fatal("Remove returned false for present name")
	}
	// The later duplicate is now the first — the index must have been rebuilt.
	if fp, ok := db.Get("dup"); !ok || !fp.Equal(c) {
		t.Fatal("after Remove, Get must find the next duplicate")
	}
	if !db.Remove("dup") || db.Remove("dup") {
		t.Fatal("second Remove of dup must succeed exactly once more")
	}
	if _, ok := db.Get("missing"); ok {
		t.Fatal("Get found a missing name")
	}
	if db.Remove("missing") {
		t.Fatal("Remove returned true for missing name")
	}
	if fp, ok := db.Get("a"); !ok || !fp.Equal(a) {
		t.Fatal("unrelated entry disturbed by Remove")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
}
