package fingerprint_test

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
)

// ExampleCharacterize shows Algorithm 1: the fingerprint is the intersection
// of the error strings of several approximate outputs.
func ExampleCharacterize() {
	exact := []byte{0x00, 0x00}
	// Two outputs of the same chip: both flip bits 3 and 9; each adds one
	// noise bit (5 and 12 respectively).
	out1 := []byte{0x28, 0x02} // bits 3, 5, 9
	out2 := []byte{0x08, 0x12} // bits 3, 9, 12

	fp, err := fingerprint.Characterize(exact, out1, out2)
	if err != nil {
		panic(err)
	}
	fmt.Println("fingerprint bits:", fp.Positions())
	// Output:
	// fingerprint bits: [3 9]
}

// ExampleDistance shows the modified Jaccard metric of Algorithm 3: a
// same-chip output at a much higher error level still scores distance 0,
// because every fingerprint bit is present in its error pattern.
func ExampleDistance() {
	fp := bitset.FromPositions(64, []uint32{3, 9})
	// Same chip, heavier approximation: fingerprint bits plus many more.
	heavy := bitset.FromPositions(64, []uint32{3, 9, 14, 21, 33, 40, 57})
	// Different chip: disjoint error positions.
	other := bitset.FromPositions(64, []uint32{7, 22, 48})

	fmt.Printf("same chip:      %.2f\n", fingerprint.Distance(heavy, fp))
	fmt.Printf("different chip: %.2f\n", fingerprint.Distance(other, fp))
	// Output:
	// same chip:      0.00
	// different chip: 1.00
}

// ExampleDB_Identify shows Algorithm 2: scanning a fingerprint database for
// the first entry within the threshold.
func ExampleDB_Identify() {
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	db.Add("alice-laptop", bitset.FromPositions(64, []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
	db.Add("bob-laptop", bitset.FromPositions(64, []uint32{40, 41, 42, 43, 44, 45, 46, 47, 48, 49}))

	// A captured output: bob's fingerprint plus two noise bits.
	es := bitset.FromPositions(64, []uint32{40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 12, 60})
	name, _, ok := db.Identify(es)
	fmt.Println(ok, name)
	// Output:
	// true bob-laptop
}

// ExampleClusterer shows Algorithm 4: grouping outputs from unknown devices.
func ExampleClusterer() {
	cl := fingerprint.NewClusterer(fingerprint.DefaultThreshold)
	deviceA := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	deviceB := []uint32{30, 31, 32, 33, 34, 35, 36, 37, 38, 39}

	fmt.Println(cl.Add(bitset.FromPositions(64, append(deviceA, 50)))) // new device
	fmt.Println(cl.Add(bitset.FromPositions(64, append(deviceB, 51)))) // new device
	fmt.Println(cl.Add(bitset.FromPositions(64, append(deviceA, 52)))) // matches first
	fmt.Println("clusters:", cl.Count())
	// Output:
	// 0
	// 1
	// 0
	// clusters: 2
}
