package fingerprint

// IDNamespace maps a partition's local, dense, add-order entry ids into a
// cluster-wide global id space. Partition p of P strides its local ids:
// global = local*Stride + Base (Base = p, Stride = P). The mapping is
// strictly monotone in the local id, which is what makes scatter-gather
// verdict merging sound: within a partition the (distance, local id)
// tie-break picks the same winner as (distance, global id), so a node can
// run its normal Decide and the router can renumber the result after the
// fact. See DESIGN.md §14 for the full argument.
//
// The zero value is the identity namespace (Base 0, Stride 0 or 1), so
// single-node deployments pay nothing and report raw local ids.
type IDNamespace struct {
	Base   int // partition ordinal: the offset added after striding
	Stride int // partition count: the multiplier applied to local ids
}

// Identity reports whether the namespace leaves ids unchanged.
func (n IDNamespace) Identity() bool {
	return n.Stride <= 1 && n.Base == 0
}

// Global maps a local id into the global id space. Negative ids (the
// "no match" sentinel -1) pass through unchanged.
func (n IDNamespace) Global(local int) int {
	if local < 0 || n.Identity() {
		return local
	}
	stride := n.Stride
	if stride < 1 {
		stride = 1
	}
	return local*stride + n.Base
}

// Local inverts Global. ok is false when the global id does not belong to
// this namespace (wrong residue modulo Stride).
func (n IDNamespace) Local(global int) (int, bool) {
	if global < 0 {
		return global, true
	}
	if n.Identity() {
		return global, true
	}
	stride := n.Stride
	if stride < 1 {
		stride = 1
	}
	if global%stride != n.Base%stride {
		return 0, false
	}
	return (global - n.Base) / stride, true
}

// Renumber returns v with its Index mapped into the global id space.
// Distance, Matches, and Name are untouched: the namespace changes how an
// entry is labelled, never what matched.
func (n IDNamespace) Renumber(v Verdict) Verdict {
	v.Index = n.Global(v.Index)
	return v
}
