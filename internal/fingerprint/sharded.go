package fingerprint

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"probablecause/internal/bitset"
	"probablecause/internal/minhash"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
	"probablecause/internal/prng"
)

// Sharded-DB metrics: mutation volume and the per-shard balance the
// signature hashing is supposed to deliver.
var (
	cShardAdds    = obs.C("fingerprint.sharded.adds")
	cShardRemoves = obs.C("fingerprint.sharded.removes")
)

// DefaultShards is the shard count a zero ShardedConfig selects: enough that
// per-shard write locks stop serializing a multi-core serving workload,
// small enough that the per-query fan-out over shards stays negligible next
// to one Distance call.
const DefaultShards = 8

// ShardedConfig parameterizes a ShardedDB.
type ShardedConfig struct {
	// Shards is the number of shards; 0 selects DefaultShards.
	Shards int
	// Index configures the per-shard LSH index (scheme, fallback, build
	// workers). The zero value selects minhash.DefaultScheme with the
	// verified fallback on.
	Index IndexedConfig
	// Plain disables the per-shard LSH indexes: every shard answers by dense
	// scan. The ablation configuration, and the strictest correctness
	// baseline (no index-recall caveats at all).
	Plain bool
	// Sliced puts the bit-sliced verification backend on every shard: the
	// per-shard fallback scan runs over a band-major SlicedArena with block
	// pruning instead of the entry slice (see SlicedDB). Verdicts are
	// unchanged; only the miss path gets faster. Mutually exclusive with
	// Plain.
	Sliced bool
	// BlockEntries is the sliced block width B when Sliced is set; 0 selects
	// bitset.DefaultSlicedEntries.
	BlockEntries int
	// RebuildMinDead is the per-shard tombstone count at which Remove
	// physically compacts the shard (drops dead entries and rebuilds the LSH
	// index and sliced arena). Below it, Remove only tombstones — O(1) instead
	// of O(shard size) — and lookups skip the dead entries. 0 selects
	// DefaultRebuildMinDead; 1 restores the eager rebuild-per-Remove behavior.
	RebuildMinDead int
}

// DefaultRebuildMinDead is the tombstone threshold a zero RebuildMinDead
// selects: large enough that bursty churn amortizes the O(shard) rebuild over
// many Removes, small enough that dead entries never dominate a shard's scan
// or memory footprint.
const DefaultRebuildMinDead = 64

// ShardedDB distributes a fingerprint database over N shards, each an
// independently locked (Indexed)DB, so concurrent adds and lookups scale
// across cores: queries take per-shard read locks and mutations write-lock
// only the one shard owning the entry. Entries are assigned to shards by a
// hash folded over the MinHash signature's band keys — the same signature
// the per-shard LSH index stores, computed once per Add.
//
// Determinism contract: a ShardedDB built by any interleaving of the same
// Add sequence answers Decide/Identify/IdentifyBest exactly as the plain DB
// built from that sequence, with Verdict.Index and the identify index
// reported as the entry's add-order id (stable across Removes, equal to the
// DB slice index when nothing was removed). Cross-shard combination is by
// (distance, id) lexicographic minimum for best-match decisions and minimum
// id for first-match decisions, which reproduces the dense scan's
// first-strictly-better / first-on-tie behavior. On indexed shards the
// per-shard answers inherit IndexedDB's contract (verified fallback; with
// several sub-threshold entries the Matches count inspects candidates only).
type ShardedDB struct {
	threshold float64
	cfg       ShardedConfig
	scheme    minhash.Scheme
	shards    []*dbShard

	mu       sync.Mutex       // serializes mutations and the name bookkeeping
	names    map[string][]int // name → owning shard of each live entry, in add order
	nextID   int
	count    atomic.Int64
	gen      atomic.Int64
	rebuilds atomic.Int64 // physical shard compactions triggered by Remove
}

// dbShard is one shard: a plain DB, its optional LSH-indexed view, the
// optional bit-sliced view over the same index, and the local-index →
// add-order-id mapping.
type dbShard struct {
	mu  sync.RWMutex
	db  *DB
	ix  *IndexedDB // nil when ShardedConfig.Plain; sx.x when ShardedConfig.Sliced
	sx  *SlicedDB  // nil unless ShardedConfig.Sliced
	ids []int
}

// build constructs the shard's indexed (and sliced) views over its DB,
// used at construction and after a Remove rebuild.
func (sh *dbShard) build(cfg ShardedConfig) error {
	if cfg.Plain {
		return nil
	}
	if cfg.Sliced {
		sx, err := SliceDB(sh.db, SlicedConfig{Index: cfg.Index, BlockEntries: cfg.BlockEntries})
		if err != nil {
			return err
		}
		sh.sx, sh.ix = sx, sx.x
		return nil
	}
	ix, err := IndexDB(sh.db, cfg.Index)
	if err != nil {
		return err
	}
	sh.ix = ix
	return nil
}

// NewShardedDB returns an empty sharded database using the given
// identification threshold.
func NewShardedDB(threshold float64, cfg ShardedConfig) (*ShardedDB, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("fingerprint: shard count %d", cfg.Shards)
	}
	if cfg.Index.Scheme == (minhash.Scheme{}) {
		cfg.Index.Scheme = minhash.DefaultScheme
	}
	if err := cfg.Index.Scheme.Validate(); err != nil {
		return nil, err
	}
	if cfg.Plain && cfg.Sliced {
		return nil, fmt.Errorf("fingerprint: Plain and Sliced are mutually exclusive")
	}
	if cfg.RebuildMinDead == 0 {
		cfg.RebuildMinDead = DefaultRebuildMinDead
	}
	if cfg.RebuildMinDead < 0 {
		return nil, fmt.Errorf("fingerprint: rebuild threshold %d", cfg.RebuildMinDead)
	}
	s := &ShardedDB{
		threshold: threshold,
		cfg:       cfg,
		scheme:    cfg.Index.Scheme,
		shards:    make([]*dbShard, cfg.Shards),
		names:     make(map[string][]int),
	}
	for i := range s.shards {
		sh := &dbShard{db: NewDB(threshold)}
		if err := sh.build(cfg); err != nil {
			return nil, err
		}
		s.shards[i] = sh
	}
	return s, nil
}

// ShardDB builds a ShardedDB holding db's entries in add order, using db's
// threshold. The entries are shared, not copied; db itself is left alone.
func ShardDB(db *DB, cfg ShardedConfig) (*ShardedDB, error) {
	s, err := NewShardedDB(db.threshold, cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range db.entries {
		s.Add(e.Name, e.FP)
	}
	return s, nil
}

// Threshold returns the identification threshold.
func (s *ShardedDB) Threshold() float64 { return s.threshold }

// Threshold returns the identification threshold.
func (db *DB) Threshold() float64 { return db.threshold }

// Len returns the number of fingerprints across all shards.
func (s *ShardedDB) Len() int { return int(s.count.Load()) }

// Generation counts mutations (Adds and Removes). Result caches key their
// entries to the generation observed before the lookup and drop writes from
// a stale generation, so a mutation can never resurrect a pre-mutation
// verdict.
func (s *ShardedDB) Generation() int64 { return s.gen.Load() }

// shardFor folds the signature's band keys into a shard assignment.
func (s *ShardedDB) shardFor(sig minhash.Signature) int {
	h := uint64(0x5113A6DE)
	for _, k := range s.scheme.BandKeys(sig) {
		h = prng.Mix64(h ^ k)
	}
	return int(h % uint64(len(s.shards)))
}

// Add registers a fingerprint under a name and returns the entry's
// stable add-order id (the id Verdict.Index reports). Duplicate names are
// permitted; Get and Remove address the earliest-added live entry under
// the name.
func (s *ShardedDB) Add(name string, fp *bitset.Set) int {
	sig := s.scheme.Sign(bitset.Sparse(fp.Positions()))
	si := s.shardFor(sig)
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.names[name] = append(s.names[name], si)
	sh := s.shards[si]
	sh.mu.Lock()
	if sh.ix != nil {
		sh.ix.index.Add(sig, len(sh.db.entries))
	}
	sh.db.Add(name, fp)
	if sh.sx != nil {
		sh.sx.arena.Add(fp)
	}
	sh.ids = append(sh.ids, id)
	sh.mu.Unlock()
	s.count.Add(1)
	s.gen.Add(1)
	s.mu.Unlock()
	if obs.On() {
		cShardAdds.Inc()
	}
	return id
}

// AddWithID registers a fingerprint under an explicit, caller-chosen id
// instead of the next dense add-order id. It exists for oracle
// construction: a single-node database rebuilt from a partitioned
// cluster's enrollments must carry each entry under the same global id
// the cluster reported (see IDNamespace), or verdict byte-comparison is
// meaningless. nextID advances past the explicit id so later plain Adds
// never collide. The caller owns id uniqueness.
func (s *ShardedDB) AddWithID(id int, name string, fp *bitset.Set) {
	sig := s.scheme.Sign(bitset.Sparse(fp.Positions()))
	si := s.shardFor(sig)
	s.mu.Lock()
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.names[name] = append(s.names[name], si)
	sh := s.shards[si]
	sh.mu.Lock()
	if sh.ix != nil {
		sh.ix.index.Add(sig, len(sh.db.entries))
	}
	sh.db.Add(name, fp)
	if sh.sx != nil {
		sh.sx.arena.Add(fp)
	}
	sh.ids = append(sh.ids, id)
	sh.mu.Unlock()
	s.count.Add(1)
	s.gen.Add(1)
	s.mu.Unlock()
	if obs.On() {
		cShardAdds.Inc()
	}
}

// Get returns the fingerprint stored under name, or ok=false.
func (s *ShardedDB) Get(name string) (*bitset.Set, bool) {
	s.mu.Lock()
	lst := s.names[name]
	if len(lst) == 0 {
		s.mu.Unlock()
		return nil, false
	}
	sh := s.shards[lst[0]]
	s.mu.Unlock()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.db.Get(name)
}

// Remove deletes the earliest-added live entry under name and reports
// whether one existed. The entry is tombstoned — O(1), verdicts exclude it
// immediately — and the owning shard is physically compacted (dead entries
// dropped, LSH index and sliced arena rebuilt) only once its tombstone count
// reaches ShardedConfig.RebuildMinDead, so removal churn no longer pays an
// O(shard size) rebuild per call. Only the owning shard is ever write-locked;
// the other shards keep serving.
func (s *ShardedDB) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	lst := s.names[name]
	if len(lst) == 0 {
		return false
	}
	si := lst[0]
	if len(lst) == 1 {
		delete(s.names, name)
	} else {
		s.names[name] = lst[1:]
	}
	sh := s.shards[si]
	sh.mu.Lock()
	local := sh.db.byName[name]
	sh.db.kill(local)
	if sh.db.deadCount >= s.cfg.RebuildMinDead {
		sh.compact(s.cfg, s.threshold)
		s.rebuilds.Add(1)
	}
	sh.mu.Unlock()
	s.count.Add(-1)
	s.gen.Add(1)
	if obs.On() {
		cShardRemoves.Inc()
	}
	return true
}

// compact drops the shard's tombstoned entries: live entries move to a fresh
// DB in local order, the add-order id mapping is remapped alongside, and the
// LSH index and sliced arena are rebuilt over the survivors (O(shard size),
// amortized over RebuildMinDead tombstone-only Removes). Caller holds sh.mu.
func (sh *dbShard) compact(cfg ShardedConfig, threshold float64) {
	ndb := NewDB(threshold)
	nids := make([]int, 0, len(sh.ids)-sh.db.deadCount)
	for i, e := range sh.db.entries {
		if !sh.db.alive(i) {
			continue
		}
		ndb.Add(e.Name, e.FP)
		nids = append(nids, sh.ids[i])
	}
	sh.db, sh.ids, sh.ix, sh.sx = ndb, nids, nil, nil
	// The scheme was validated at construction, so the build cannot fail here.
	if err := sh.build(cfg); err != nil {
		panic("fingerprint: sharded index rebuild: " + err.Error())
	}
}

// Rebuilds returns the number of physical shard compactions Remove has
// triggered — the regression hook proving tombstoning defers the O(shard)
// rebuild until RebuildMinDead removals accumulate.
func (s *ShardedDB) Rebuilds() int64 { return s.rebuilds.Load() }

// decideRaw answers over one shard without obs verdict counters, mapping the
// local best index to its add-order id.
func (sh *dbShard) decideRaw(errorString *bitset.Set) Verdict {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var v Verdict
	switch {
	case sh.sx != nil:
		v = sh.sx.decideRaw(errorString)
	case sh.ix != nil:
		v = sh.ix.decideRaw(errorString)
	default:
		v = sh.db.decideRaw(errorString)
	}
	if v.Index >= 0 {
		v.Index = sh.ids[v.Index]
	}
	return v
}

// firstMatch answers Algorithm 2 over one shard, mapping the local index to
// its add-order id.
func (sh *dbShard) firstMatch(errorString *bitset.Set) (name string, id int, ok bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var local int
	switch {
	case sh.sx != nil:
		name, local, ok = sh.sx.firstMatch(errorString)
	case sh.ix != nil:
		name, local, ok = sh.ix.firstMatch(errorString)
	default:
		name, local, ok = sh.db.firstMatch(errorString)
	}
	if !ok {
		return "", -1, false
	}
	return name, sh.ids[local], true
}

// MergeVerdict folds one component's answer into the running cross-component
// verdict: match counts accumulate and the (distance, id)-lexicographic
// minimum wins — the single combination rule Decide, DecideCtx, and the
// tiered storage engine's memtable+segment combine share, so neither tracing
// nor flush timing can ever change an answer.
func MergeVerdict(v *Verdict, sv Verdict) {
	v.Matches += sv.Matches
	if sv.Index < 0 {
		return
	}
	if sv.Distance < v.Distance || (sv.Distance == v.Distance && (v.Index < 0 || sv.Index < v.Index)) {
		v.Name, v.Index, v.Distance = sv.Name, sv.Index, sv.Distance
	}
}

// Decide runs the full identification decision across all shards: the
// (distance, id)-lexicographic best entry and the total sub-threshold match
// count.
func (s *ShardedDB) Decide(errorString *bitset.Set) Verdict {
	v := Verdict{Index: -1, Distance: 2}
	for _, sh := range s.shards {
		MergeVerdict(&v, sh.decideRaw(errorString))
	}
	recordVerdict(v)
	return v
}

// DecideRaw is Decide without the obs verdict counters, for callers (the
// tiered storage engine) that merge this database's answer with other
// components' before recording one decision.
func (s *ShardedDB) DecideRaw(errorString *bitset.Set) Verdict {
	v := Verdict{Index: -1, Distance: 2}
	for _, sh := range s.shards {
		MergeVerdict(&v, sh.decideRaw(errorString))
	}
	return v
}

// FirstMatch is Identify without the obs counters: the minimum add-order id
// under the threshold, for callers that merge first-match answers across
// components.
func (s *ShardedDB) FirstMatch(errorString *bitset.Set) (name string, index int, ok bool) {
	index = -1
	for _, sh := range s.shards {
		n, id, hit := sh.firstMatch(errorString)
		if hit && (index < 0 || id < index) {
			name, index = n, id
		}
	}
	return name, index, index >= 0
}

// DecideCtx is Decide with request-scoped tracing: when ctx carries a
// request span (obs.StartRequest), the shard fan-out records one
// shard.identify child span per shard and a decide span around the
// cross-shard combine. The verdict is identical to Decide's — spans
// observe the scan, they never reorder it.
func (s *ShardedDB) DecideCtx(ctx context.Context, errorString *bitset.Set) Verdict {
	parent := obs.SpanFrom(ctx)
	if parent == nil {
		return s.Decide(errorString)
	}
	svs := make([]Verdict, len(s.shards))
	for i, sh := range s.shards {
		sp := parent.Child("shard.identify")
		sp.SetAttr("shard", i)
		svs[i] = sh.decideRaw(errorString)
		sp.End()
	}
	dsp := parent.Child("decide")
	v := Verdict{Index: -1, Distance: 2}
	for _, sv := range svs {
		MergeVerdict(&v, sv)
	}
	dsp.End()
	recordVerdict(v)
	return v
}

// Identify implements Algorithm 2 across the shards: every shard reports its
// first match and the minimum add-order id wins — the entry the dense scan
// in add order would have accepted. The obs ambiguity counter fires when
// matches surface from more than one shard (a lower bound on the true
// ambiguity, which Decide counts exactly).
func (s *ShardedDB) Identify(errorString *bitset.Set) (name string, index int, ok bool) {
	index = -1
	matchedShards := 0
	for _, sh := range s.shards {
		n, id, hit := sh.firstMatch(errorString)
		if !hit {
			continue
		}
		matchedShards++
		if index < 0 || id < index {
			name, index = n, id
		}
	}
	if obs.On() {
		if index < 0 {
			cIdentifyMiss.Inc()
		} else {
			cIdentifyHit.Inc()
			if matchedShards > 1 {
				cIdentifyAmbig.Inc()
			}
		}
	}
	return name, index, index >= 0
}

// IdentifyBest returns the minimum-distance entry across all shards; see
// Decide for the combination rule.
func (s *ShardedDB) IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64) {
	v := s.Decide(errorString)
	return v.Name, v.Index, v.Distance
}

// ParallelIdentify runs Identify for every error string across a bounded
// worker pool; see DB.ParallelIdentify for the determinism contract.
func (s *ShardedDB) ParallelIdentify(errorStrings []*bitset.Set, workers int) []Match {
	out := make([]Match, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		name, idx, ok := s.Identify(errorStrings[i])
		out[i] = Match{Name: name, Index: idx, OK: ok}
	})
	return out
}

// ParallelDecide runs Decide for every error string across a bounded worker
// pool; each slot equals a serial Decide call.
func (s *ShardedDB) ParallelDecide(errorStrings []*bitset.Set, workers int) []Verdict {
	out := make([]Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		out[i] = s.Decide(errorStrings[i])
	})
	return out
}

// ParallelDecideCtx is ParallelDecide with per-query trace contexts: slot i
// answers errorStrings[i] under ctxs[i] (nil or missing contexts fall back
// untraced), so a coalesced batch records each originating request's shard
// fan-out in that request's own span tree.
func (s *ShardedDB) ParallelDecideCtx(ctxs []context.Context, errorStrings []*bitset.Set, workers int) []Verdict {
	out := make([]Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		ctx := context.Background()
		if i < len(ctxs) && ctxs[i] != nil {
			ctx = ctxs[i]
		}
		out[i] = s.DecideCtx(ctx, errorStrings[i])
	})
	return out
}

// ShardStats summarizes the sharded database for the /v1/db endpoint.
type ShardStats struct {
	Entries  int   `json:"entries"`
	PerShard []int `json:"per_shard"`
	Indexed  bool  `json:"indexed"`
}

// Stats returns the entry distribution across shards.
func (s *ShardedDB) Stats() ShardStats {
	st := ShardStats{PerShard: make([]int, len(s.shards)), Indexed: !s.cfg.Plain}
	for i, sh := range s.shards {
		sh.mu.RLock()
		st.PerShard[i] = sh.db.Len()
		st.Entries += sh.db.Len()
		sh.mu.RUnlock()
	}
	return st
}

// Export reassembles a plain DB holding the live entries in add order —
// the snapshot pcserved writes on shutdown. Fingerprints are shared, not
// copied; mutations are blocked for the duration.
func (s *ShardedDB) Export() *DB {
	db := NewDB(s.threshold)
	for _, t := range s.ExportIDs() {
		db.Add(t.Name, t.FP)
	}
	return db
}

// IDEntry is one exported entry with its stable add-order id — the triple a
// storage backend persists so segment files can answer with the same ids the
// in-memory database reports.
type IDEntry struct {
	ID   int
	Name string
	FP   *bitset.Set
}

// ExportIDs returns the live entries sorted by add-order id. Fingerprints are
// shared, not copied; mutations are blocked for the duration.
func (s *ShardedDB) ExportIDs() []IDEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]IDEntry, 0, s.count.Load())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for i, e := range sh.db.entries {
			if !sh.db.alive(i) {
				continue
			}
			all = append(all, IDEntry{ID: sh.ids[i], Name: e.Name, FP: e.FP})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// String renders a small summary for logs.
func (s *ShardedDB) String() string {
	return fmt.Sprintf("shardeddb(entries=%d, shards=%d, indexed=%v, sliced=%v)",
		s.Len(), len(s.shards), !s.cfg.Plain, s.cfg.Sliced)
}
