package fingerprint

import (
	"fmt"
	"sync"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

// testSet builds a deterministic pseudo-random fingerprint of about k bits
// over an nbits universe.
func testSet(seed uint64, nbits, k int) *bitset.Set {
	s := bitset.New(nbits)
	for j := 0; j < k; j++ {
		s.Set(int(prng.Hash(seed, uint64(j)) % uint64(nbits)))
	}
	return s
}

// noisyQuery derives an error string that matches fp: all of fp's bits plus
// extra noise, so |fp \ es| = 0 and the distance is exactly 0.
func noisyQuery(fp *bitset.Set, seed uint64, extra int) *bitset.Set {
	es := fp.Clone()
	for j := 0; j < extra; j++ {
		es.Set(int(prng.Hash(seed, 0xE5, uint64(j)) % uint64(fp.Len())))
	}
	return es
}

// buildEquivalent returns a plain DB and a ShardedDB fed the identical Add
// sequence.
func buildEquivalent(t *testing.T, n int, cfg ShardedConfig) (*DB, *ShardedDB) {
	t.Helper()
	db := NewDB(DefaultThreshold)
	sh, err := NewShardedDB(DefaultThreshold, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dev%03d", i)
		fp := testSet(uint64(i)*0x9E37+1, 4096, 64)
		db.Add(name, fp)
		sh.Add(name, fp)
	}
	return db, sh
}

// TestShardedMatchesPlainDB is the core equivalence property: for any shard
// count, indexed or plain shards, Decide/Identify/IdentifyBest agree with
// the dense-scan DB on matching, missing, and near-miss queries.
func TestShardedMatchesPlainDB(t *testing.T) {
	const entries = 60
	for _, shards := range []int{1, 2, 7, 16} {
		for _, mode := range []string{"indexed", "plain", "sliced"} {
			t.Run(fmt.Sprintf("shards=%d_%s", shards, mode), func(t *testing.T) {
				cfg := ShardedConfig{Shards: shards, Plain: mode == "plain"}
				if mode == "sliced" {
					cfg.Sliced = true
					cfg.BlockEntries = 8 // force multiple blocks with partial tails
				}
				db, sh := buildEquivalent(t, entries, cfg)
				if sh.Len() != db.Len() {
					t.Fatalf("Len: sharded %d, plain %d", sh.Len(), db.Len())
				}
				var queries []*bitset.Set
				for i := 0; i < entries; i += 3 {
					fp, _ := db.Get(fmt.Sprintf("dev%03d", i))
					queries = append(queries, noisyQuery(fp, uint64(i), 200))
				}
				for i := 0; i < 10; i++ {
					queries = append(queries, testSet(0xF00D+uint64(i), 4096, 64))
				}
				for qi, q := range queries {
					want := db.Decide(q)
					got := sh.Decide(q)
					if got != want {
						t.Errorf("query %d: Decide sharded %+v, plain %+v", qi, got, want)
					}
					wn, wi, wok := db.Identify(q)
					gn, gi, gok := sh.Identify(q)
					if wn != gn || wi != gi || wok != gok {
						t.Errorf("query %d: Identify sharded (%s,%d,%v), plain (%s,%d,%v)",
							qi, gn, gi, gok, wn, wi, wok)
					}
				}
				// The batch APIs must agree slot-for-slot with the serial calls.
				for i, v := range sh.ParallelDecide(queries, 4) {
					if want := db.Decide(queries[i]); v != want {
						t.Errorf("ParallelDecide[%d] = %+v, want %+v", i, v, want)
					}
				}
				for i, m := range sh.ParallelIdentify(queries, 4) {
					wn, wi, wok := db.Identify(queries[i])
					if m.Name != wn || m.Index != wi || m.OK != wok {
						t.Errorf("ParallelIdentify[%d] = %+v, want (%s,%d,%v)", i, m, wn, wi, wok)
					}
				}
			})
		}
	}
}

// TestDecideAmbiguity checks the Matches count and the Ambiguous verdict on
// a database holding the same fingerprint under two names.
func TestDecideAmbiguity(t *testing.T) {
	fp := testSet(0xA1, 4096, 64)
	other := testSet(0xB2, 4096, 64)
	db := NewDB(DefaultThreshold)
	db.Add("twinA", fp)
	db.Add("other", other)
	db.Add("twinB", fp.Clone())

	q := noisyQuery(fp, 7, 100)
	v := db.Decide(q)
	if !v.OK() || !v.Ambiguous() || v.Matches != 2 {
		t.Fatalf("Decide = %+v, want 2 ambiguous matches", v)
	}
	if v.Name != "twinA" || v.Index != 0 {
		t.Fatalf("Decide best = %s/%d, want twinA/0 (first on tie)", v.Name, v.Index)
	}

	miss := db.Decide(testSet(0xC3, 4096, 64))
	if miss.OK() || miss.Ambiguous() || miss.Matches != 0 {
		t.Fatalf("miss Decide = %+v", miss)
	}

	sh, err := ShardDB(db, ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sv := sh.Decide(q); sv != v {
		t.Fatalf("sharded Decide = %+v, plain %+v", sv, v)
	}
}

// TestDecideEmptyDB pins the degenerate verdict.
func TestDecideEmptyDB(t *testing.T) {
	db := NewDB(DefaultThreshold)
	v := db.Decide(testSet(1, 256, 8))
	if v.OK() || v.Index != -1 || v.Distance != 2 {
		t.Fatalf("empty Decide = %+v", v)
	}
	sh, err := NewShardedDB(DefaultThreshold, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sv := sh.Decide(testSet(1, 256, 8)); sv != v {
		t.Fatalf("empty sharded Decide = %+v", sv)
	}
}

// TestShardedRemoveExport exercises Remove semantics (earliest-added entry
// under the name, duplicates allowed) and the add-order Export used for
// snapshots.
func TestShardedRemoveExport(t *testing.T) {
	sh, err := NewShardedDB(DefaultThreshold, ShardedConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	fps := make([]*bitset.Set, 5)
	names := []string{"a", "b", "a", "c", "b"}
	for i, name := range names {
		fps[i] = testSet(uint64(i)+0x51, 2048, 40)
		sh.Add(name, fps[i])
	}
	if got, ok := sh.Get("a"); !ok || !got.Equal(fps[0]) {
		t.Fatalf("Get(a) returned wrong entry (ok=%v)", ok)
	}
	if !sh.Remove("a") {
		t.Fatal("Remove(a) found nothing")
	}
	if got, ok := sh.Get("a"); !ok || !got.Equal(fps[2]) {
		t.Fatalf("Get(a) after remove: want second a-entry (ok=%v)", ok)
	}
	if sh.Remove("zzz") {
		t.Fatal("Remove(zzz) removed something")
	}
	if sh.Len() != 4 {
		t.Fatalf("Len = %d, want 4", sh.Len())
	}

	// After removing the first "a", the surviving add order is b, a, c, b.
	exp := sh.Export()
	wantOrder := []int{1, 2, 3, 4}
	if exp.Len() != len(wantOrder) {
		t.Fatalf("export Len = %d, want %d", exp.Len(), len(wantOrder))
	}
	for i, src := range wantOrder {
		e := exp.Entries()[i]
		if e.Name != names[src] || !e.FP.Equal(fps[src]) {
			t.Fatalf("export[%d] = %s, want %s (source %d)", i, e.Name, names[src], src)
		}
	}

	// Removed entries must no longer match; surviving ones keep their
	// stable add-order ids.
	v := sh.Decide(noisyQuery(fps[2], 9, 60))
	if !v.OK() || v.Name != "a" || v.Index != 2 {
		t.Fatalf("post-remove Decide = %+v, want a/2", v)
	}
	st := sh.Stats()
	if st.Entries != 4 || len(st.PerShard) != 3 {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestShardedConcurrentMutation hammers Add/Remove/Decide from many
// goroutines; run under -race this is the lock-discipline check, and the
// final state must be consistent.
func TestShardedConcurrentMutation(t *testing.T) {
	sh, err := NewShardedDB(DefaultThreshold, ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const base = 32
	for i := 0; i < base; i++ {
		sh.Add(fmt.Sprintf("base%02d", i), testSet(uint64(i)+0x77, 2048, 40))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("g%d-%02d", g, i)
				fp := testSet(uint64(g)<<8|uint64(i), 2048, 40)
				sh.Add(name, fp)
				sh.Decide(noisyQuery(fp, uint64(i), 30))
				if i%2 == 0 {
					sh.Remove(name)
				}
			}
		}(g)
	}
	wg.Wait()
	want := base + 4*10 // half of each goroutine's adds were removed
	if sh.Len() != want {
		t.Fatalf("Len = %d, want %d", sh.Len(), want)
	}
	if exp := sh.Export(); exp.Len() != want {
		t.Fatalf("export Len = %d, want %d", exp.Len(), want)
	}
}

// TestShardedSlicedRemoveRebuild: a Remove on a sliced shard rebuilds both
// the LSH index and the sliced arena; post-remove answers must track the
// surviving entries and the removed fingerprint must stop matching.
func TestShardedSlicedRemoveRebuild(t *testing.T) {
	sh, err := NewShardedDB(DefaultThreshold, ShardedConfig{Shards: 2, Sliced: true, BlockEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	fps := make([]*bitset.Set, n)
	for i := range fps {
		fps[i] = testSet(uint64(i)+0x5E, 2048, 40)
		sh.Add(fmt.Sprintf("dev%02d", i), fps[i])
	}
	if !sh.Remove("dev07") {
		t.Fatal("Remove(dev07) found nothing")
	}
	if v := sh.Decide(noisyQuery(fps[7], 1, 60)); v.OK() {
		t.Fatalf("removed entry still matches: %+v", v)
	}
	for i := 0; i < n; i++ {
		if i == 7 {
			continue
		}
		v := sh.Decide(noisyQuery(fps[i], uint64(i), 60))
		if !v.OK() || v.Name != fmt.Sprintf("dev%02d", i) || v.Index != i {
			t.Fatalf("survivor %d: Decide = %+v", i, v)
		}
	}
}

// TestShardedRejectsPlainSliced: the two backends are mutually exclusive.
func TestShardedRejectsPlainSliced(t *testing.T) {
	if _, err := NewShardedDB(DefaultThreshold, ShardedConfig{Plain: true, Sliced: true}); err == nil {
		t.Fatal("Plain+Sliced config accepted")
	}
}

// TestShardedRemoveTombstone: Remove must exclude the entry from every
// verdict path immediately while deferring the O(shard) physical rebuild
// until RebuildMinDead tombstones accumulate — the PR 8 regression where
// each Remove rebuilt the whole SlicedArena.
func TestShardedRemoveTombstone(t *testing.T) {
	for _, cfg := range []ShardedConfig{
		{Shards: 1, Plain: true, RebuildMinDead: 4},
		{Shards: 1, RebuildMinDead: 4},
		{Shards: 1, Sliced: true, BlockEntries: 4, RebuildMinDead: 4},
	} {
		sh, err := NewShardedDB(DefaultThreshold, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 12
		fps := make([]*bitset.Set, n)
		for i := range fps {
			fps[i] = testSet(uint64(i)+0x91, 2048, 40)
			sh.Add(fmt.Sprintf("dev%02d", i), fps[i])
		}
		// Three tombstone-only removes: verdicts exclude the ids at once, no
		// physical compaction yet.
		for k, victim := range []int{3, 5, 9} {
			if !sh.Remove(fmt.Sprintf("dev%02d", victim)) {
				t.Fatalf("cfg %+v: Remove(dev%02d) found nothing", cfg, victim)
			}
			if got := sh.Rebuilds(); got != 0 {
				t.Fatalf("cfg %+v: %d rebuilds after %d removes, want deferred", cfg, got, k+1)
			}
			q := noisyQuery(fps[victim], uint64(victim), 60)
			if v := sh.Decide(q); v.OK() {
				t.Fatalf("cfg %+v: tombstoned dev%02d still matches Decide: %+v", cfg, victim, v)
			}
			if name, _, ok := sh.Identify(q); ok {
				t.Fatalf("cfg %+v: tombstoned dev%02d still matches Identify: %s", cfg, victim, name)
			}
		}
		if got := sh.Len(); got != n-3 {
			t.Fatalf("cfg %+v: Len = %d, want %d", cfg, got, n-3)
		}
		// The fourth remove crosses RebuildMinDead and compacts the shard.
		if !sh.Remove("dev00") {
			t.Fatalf("cfg %+v: Remove(dev00) found nothing", cfg)
		}
		if got := sh.Rebuilds(); got != 1 {
			t.Fatalf("cfg %+v: %d rebuilds after crossing threshold, want 1", cfg, got)
		}
		// Survivors keep their stable add-order ids across the compaction,
		// and exports carry only live entries.
		for i := 0; i < n; i++ {
			v := sh.Decide(noisyQuery(fps[i], uint64(i), 60))
			removed := i == 0 || i == 3 || i == 5 || i == 9
			if removed {
				if v.OK() {
					t.Fatalf("cfg %+v: removed dev%02d matches after compaction: %+v", cfg, i, v)
				}
				continue
			}
			if !v.OK() || v.Name != fmt.Sprintf("dev%02d", i) || v.Index != i {
				t.Fatalf("cfg %+v: survivor %d: Decide = %+v", cfg, i, v)
			}
		}
		ids := sh.ExportIDs()
		if len(ids) != n-4 {
			t.Fatalf("cfg %+v: ExportIDs len = %d, want %d", cfg, len(ids), n-4)
		}
		for k := 1; k < len(ids); k++ {
			if ids[k-1].ID >= ids[k].ID {
				t.Fatalf("cfg %+v: ExportIDs not id-sorted at %d", cfg, k)
			}
		}
	}
}
