package fingerprint

import (
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
)

func obsSet(t *testing.T, n int, positions ...int) *bitset.Set {
	t.Helper()
	s := bitset.New(n)
	for _, p := range positions {
		s.Set(p)
	}
	return s
}

// TestAccumulatorMatchesCharacterize: with the default (intersection)
// config, the accumulator's fingerprint after k observations must equal
// Characterize over the same k outputs.
func TestAccumulatorMatchesCharacterize(t *testing.T) {
	const n = 512
	exact := make([]byte, n/8)
	outputs := make([][]byte, 6)
	for i := range outputs {
		out := make([]byte, n/8)
		out[3] = 0xFF            // core error cells, every trial
		out[10+i%2] = 0x0F       // flickering cells
		out[20] = byte(1 << (i % 3))
		outputs[i] = out
	}
	want, err := Characterize(exact, outputs...)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(n, AccumulatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outputs {
		es, err := ErrorString(out, exact)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Add(es); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Fingerprint(); !got.Equal(want) {
		t.Fatalf("accumulator fingerprint %v != Characterize %v", got.Positions(), want.Positions())
	}
	if acc.Observations() != len(outputs) {
		t.Fatalf("observations %d", acc.Observations())
	}
}

// TestAccumulatorConvergence: a stream whose noise dies out converges at
// the deterministic point MinObservations/StablePatience dictate, and
// the convergence point is stable across identical replays.
func TestAccumulatorConvergence(t *testing.T) {
	const n = 256
	core := []int{3, 50, 99, 200}
	stream := func() *Accumulator {
		acc, err := NewAccumulator(n, AccumulatorConfig{MinObservations: 4, StablePatience: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			positions := append([]int(nil), core...)
			if i < 5 {
				positions = append(positions, 100+i) // early per-trial noise
			}
			if err := acc.Add(obsSet(t, n, positions...)); err != nil {
				t.Fatal(err)
			}
		}
		return acc
	}
	a, b := stream(), stream()
	if !a.Converged() || !b.Converged() {
		t.Fatalf("accumulator did not converge (stableFor=%d obs=%d)", a.StableFor(), a.Observations())
	}
	if a.ConvergedAt() != b.ConvergedAt() {
		t.Fatalf("convergence not deterministic: %d vs %d", a.ConvergedAt(), b.ConvergedAt())
	}
	// Each trial's noise bit differs, so the intersection equals the core
	// from obs 2 on: obs 3, 4, 5 leave it unchanged, reaching
	// StablePatience 3 at obs 5 with MinObservations 4 already met.
	if got := a.ConvergedAt(); got != 5 {
		t.Fatalf("converged at %d, want 5", got)
	}
	if !a.Fingerprint().Equal(obsSet(t, n, core...)) {
		t.Fatalf("converged fingerprint %v, want core %v", a.Fingerprint().Positions(), core)
	}
}

// TestAccumulatorQuotaVoting: with a quota below 1, cells failing in
// most-but-not-all observations stay in the fingerprint.
func TestAccumulatorQuotaVoting(t *testing.T) {
	const n = 128
	acc, err := NewAccumulator(n, AccumulatorConfig{Quota: 0.7, MinObservations: 4, StablePatience: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		positions := []int{1, 2} // always fail
		if i != 0 {
			positions = append(positions, 7) // fails 9/10 ≥ 70 %
		}
		if i%2 == 0 {
			positions = append(positions, 9) // fails 5/10 < 70 %
		}
		if err := acc.Add(obsSet(t, n, positions...)); err != nil {
			t.Fatal(err)
		}
	}
	fp := acc.Fingerprint()
	for _, p := range []int{1, 2, 7} {
		if !fp.Get(p) {
			t.Fatalf("quota fingerprint missing cell %d: %v", p, fp.Positions())
		}
	}
	if fp.Get(9) {
		t.Fatalf("cell 9 (50%% failure) cleared the 70%% quota: %v", fp.Positions())
	}
}

// TestAccumulatorModelConvergence drives the accumulator with the
// paper's mathematical DRAM model: noisy trials of one page must
// converge onto a stable subset of the page's volatile set, and the
// converged fingerprint must identify the device.
func TestAccumulatorModelConvergence(t *testing.T) {
	m := drammodel.New(0xACC)
	const errRate = 0.01
	acc, err := NewAccumulator(m.PageBits, AccumulatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 200 && !acc.Converged(); trial++ {
		sp, err := m.PageErrors(0, errRate, trial)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Add(bitset.FromPositions(m.PageBits, sp)); err != nil {
			t.Fatal(err)
		}
	}
	if !acc.Converged() {
		t.Fatalf("no convergence in 200 trials (weight %d, stableFor %d)", acc.Weight(), acc.StableFor())
	}
	fp := acc.Fingerprint()
	if fp.Count() == 0 {
		t.Fatal("converged to an empty fingerprint")
	}
	// Every surviving cell must be in the model's volatile set — the
	// intersection can only narrow the true fingerprint, never invent.
	vol, err := m.VolatileSet(0, errRate)
	if err != nil {
		t.Fatal(err)
	}
	volSet := bitset.FromPositions(m.PageBits, vol)
	if !fp.IsSubset(volSet) {
		t.Fatal("converged fingerprint contains cells outside the volatile set")
	}
	// A later output of the same device must sit under the threshold; a
	// different device must not.
	db := NewDB(DefaultThreshold)
	db.Add("self", fp)
	sp, err := m.PageErrors(0, errRate, 999)
	if err != nil {
		t.Fatal(err)
	}
	if v := db.Decide(bitset.FromPositions(m.PageBits, sp)); !v.OK() {
		t.Fatalf("own later output did not match (distance %.4f)", v.Distance)
	}
	other := drammodel.New(0xBAD)
	osp, err := other.PageErrors(0, errRate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := db.Decide(bitset.FromPositions(m.PageBits, osp)); v.OK() {
		t.Fatalf("foreign output matched (distance %.4f)", v.Distance)
	}
}

func TestAccumulatorErrors(t *testing.T) {
	if _, err := NewAccumulator(0, AccumulatorConfig{}); err == nil {
		t.Fatal("zero length accepted")
	}
	acc, err := NewAccumulator(64, AccumulatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(bitset.New(32)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if acc.Fingerprint() != nil || acc.Weight() != 0 {
		t.Fatal("empty accumulator has a fingerprint")
	}
}
