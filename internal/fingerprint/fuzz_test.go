package fingerprint

import (
	"bytes"
	"testing"

	"probablecause/internal/bitset"
)

// FuzzReadDB: the fingerprint-database decoder must never panic and anything
// it accepts must survive a write/read round trip.
func FuzzReadDB(f *testing.F) {
	var buf bytes.Buffer
	db := NewDB(DefaultThreshold)
	db.Add("x", bitset.FromPositions(1000, []uint32{1, 2, 3}))
	if _, err := db.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PCDB01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDB(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-write of accepted DB failed: %v", err)
		}
		again, err := ReadDB(&out)
		if err != nil {
			t.Fatalf("round trip read failed: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed entry count %d → %d", got.Len(), again.Len())
		}
	})
}
