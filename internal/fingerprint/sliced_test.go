package fingerprint

import (
	"fmt"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/minhash"
	"probablecause/internal/prng"
)

// TestSlicedIdentifyMatchesScan: every SlicedDB decision must be bit-identical
// to the dense scan — Identify triple, IdentifyBest distance, full Verdict —
// across block widths (including width 1 and a partial tail block) and both
// probing modes.
func TestSlicedIdentifyMatchesScan(t *testing.T) {
	fps, outs, _ := mkChipWorld(t, 12, 4, 4096, 0x51C)
	db := NewDB(DefaultThreshold)
	for i, fp := range fps {
		db.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	// Unknown devices exercise the pruned fallback scan (Identify) and the
	// unpruned sweep (Decide).
	unknownFPs, unknownOuts, _ := mkChipWorld(t, 2, 2, 4096, 0xFFFF)
	queries := append(append([]*bitset.Set{}, outs...), unknownFPs...)
	queries = append(queries, unknownOuts...)
	queries = append(queries, bitset.New(4096)) // empty query, degenerate path

	for _, probes := range []bool{false, true} {
		for _, width := range []int{1, 5, 64} {
			cfg := SlicedConfig{BlockEntries: width}
			cfg.Index.Probes = probes
			sx, err := SliceDB(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for k, q := range queries {
				sn, si, sok := db.Identify(q)
				xn, xi, xok := sx.Identify(q)
				if sn != xn || si != xi || sok != xok {
					t.Fatalf("probes=%v width=%d query %d: scan (%s,%d,%v) != sliced (%s,%d,%v)",
						probes, width, k, sn, si, sok, xn, xi, xok)
				}
				sv, xv := db.Decide(q), sx.Decide(q)
				if sv != xv {
					t.Fatalf("probes=%v width=%d query %d: scan verdict %+v != sliced %+v",
						probes, width, k, sv, xv)
				}
			}
		}
	}
}

// TestSlicedAddMatchesBulkBuild: incremental Adds and a bulk SliceDB build
// over the same entries must decide identically.
func TestSlicedAddMatchesBulkBuild(t *testing.T) {
	fps, outs, _ := mkChipWorld(t, 9, 2, 4096, 0xADD)
	bulkDB := NewDB(DefaultThreshold)
	for i, fp := range fps {
		bulkDB.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	bulk, err := SliceDB(bulkDB, SlicedConfig{BlockEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	incr, err := NewSlicedDB(DefaultThreshold, SlicedConfig{BlockEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range fps {
		incr.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	for k, out := range outs {
		if bv, iv := bulk.Decide(out), incr.Decide(out); bv != iv {
			t.Fatalf("output %d: bulk %+v != incremental %+v", k, bv, iv)
		}
	}
}

// sparseFP builds an nbits-bit fingerprint with about card set positions, as
// a pure function of seed — O(card), so a 100k corpus builds in milliseconds
// where a full per-bit sweep would not.
func sparseFP(nbits, card int, seed uint64) *bitset.Set {
	s := bitset.New(nbits)
	for k := 0; s.Count() < card; k++ {
		s.Set(int(prng.Hash(seed, uint64(k)) % uint64(nbits)))
	}
	return s
}

// TestSlicedInvariance100k: at 100k entries the scan, indexed, and sliced
// paths must agree on every verdict, serially and under ParallelIdentify /
// ParallelDecide with arbitrary worker counts. This is the randomized
// invariance suite the PR-8 acceptance criteria name; it runs under -race in
// CI, so the corpus is sized for the detector (1024-bit fingerprints,
// ~13 MB of words).
func TestSlicedInvariance100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k corpus; skipped in -short mode")
	}
	const (
		nEntries = 100_000
		nbits    = 1024
		seed     = 0x100A8
	)
	db := NewDB(DefaultThreshold)
	for i := 0; i < nEntries; i++ {
		// Cardinality varies 8..40 so blocks mix orientations and the
		// cardinality-bound prune sees non-degenerate minima.
		card := 8 + int(prng.Hash(seed, uint64(i))%33)
		db.Add(fmt.Sprintf("dev%06d", i), sparseFP(nbits, card, seed^uint64(i)))
	}
	ix, err := IndexDB(db, IndexedConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := SliceDB(db, SlicedConfig{Index: IndexedConfig{Workers: 4, Probes: true}})
	if err != nil {
		t.Fatal(err)
	}

	// Query mix: perturbed copies of registered fingerprints (hits, ~2% of
	// bits dropped like trial flicker), fresh random sets (misses, exercising
	// the fallback paths where sliced and scan must still tie bit-for-bit),
	// and the empty set.
	var queries []*bitset.Set
	for k := 0; k < 16; k++ {
		i := int(prng.Hash(seed, 0xA, uint64(k)) % nEntries)
		q := db.entries[i].FP.Clone()
		pos := q.Positions()
		if len(pos) > 0 && k%2 == 0 {
			q.Clear(int(pos[prng.Hash(seed, 0xB, uint64(k))%uint64(len(pos))]))
		}
		queries = append(queries, q)
	}
	for k := 0; k < 12; k++ {
		queries = append(queries, sparseFP(nbits, 20, 0xDEAD0000^uint64(k)))
	}
	queries = append(queries, bitset.New(nbits))

	for k, q := range queries {
		sv := db.Decide(q)
		if iv := ix.Decide(q); sv != iv {
			t.Fatalf("query %d: scan %+v != indexed %+v", k, sv, iv)
		}
		if xv := sx.Decide(q); sv != xv {
			t.Fatalf("query %d: scan %+v != sliced %+v", k, sv, xv)
		}
		sn, si, sok := db.Identify(q)
		xn, xi, xok := sx.Identify(q)
		if sn != xn || si != xi || sok != xok {
			t.Fatalf("query %d: scan identify (%s,%d,%v) != sliced (%s,%d,%v)", k, sn, si, sok, xn, xi, xok)
		}
	}

	// Any worker count: a seeded-random count plus the serial and small-prime
	// cases. Slot i must equal the serial answer on every path.
	serial := db.ParallelDecide(queries, 1)
	workerCounts := []int{1, 3, 4 + int(prng.Hash(seed, 0xC)%5)}
	for _, w := range workerCounts {
		for _, ident := range []Identifier{ix, sx} {
			got := ident.ParallelDecide(queries, w)
			for i := range serial {
				if got[i] != serial[i] {
					t.Fatalf("workers=%d %T slot %d: %+v != serial %+v", w, ident, i, got[i], serial[i])
				}
			}
			matches := ident.ParallelIdentify(queries, w)
			for i, m := range matches {
				if m.OK != serial[i].OK() || (m.OK && m.Index != serial[i].Index) {
					t.Fatalf("workers=%d %T slot %d: identify %+v vs verdict %+v", w, ident, i, m, serial[i])
				}
			}
		}
	}
}

// TestSlicedProbesRequiresRows: the multi-probe config must surface minhash's
// Rows ≥ 2 requirement at construction, not at first query.
func TestSlicedProbesRequiresRows(t *testing.T) {
	cfg := SlicedConfig{}
	cfg.Index.Scheme = minhash.Scheme{Bands: 4, Rows: 1, Seed: 7}
	cfg.Index.Probes = true
	if _, err := NewSlicedDB(DefaultThreshold, cfg); err == nil {
		t.Fatal("Rows=1 multi-probe sliced DB accepted")
	}
}
