package fingerprint

import (
	"fmt"
	"math"

	"probablecause/internal/bitset"
)

// Accumulator defaults; see AccumulatorConfig.
const (
	DefaultMinObservations = 8
	DefaultStablePatience  = 5
)

// AccumulatorConfig parameterizes an Accumulator. The zero value selects
// the paper-faithful configuration: pure intersection (Algorithm 1) with
// convergence declared after DefaultStablePatience unchanged
// observations past DefaultMinObservations total.
type AccumulatorConfig struct {
	// Quota is the fraction of observations a cell must have failed in to
	// belong to the fingerprint. 0 or 1 selects pure intersection — the
	// cell failed in every observation, exactly Characterize's AND fold.
	// Values in (0, 1) relax that to per-cell decay-order voting: the
	// fingerprint is the set of cells whose observed failure rate clears
	// the quota, which tolerates the per-trial noise band the paper
	// reports (~2 % unstable bits, §7.2) at the price of a larger working
	// set (per-cell vote counters).
	Quota float64
	// MinObservations is the minimum number of observations before the
	// accumulator may declare convergence; 0 selects
	// DefaultMinObservations.
	MinObservations int
	// StablePatience is how many consecutive observations must leave the
	// fingerprint unchanged before it is declared converged; 0 selects
	// DefaultStablePatience.
	StablePatience int
}

func (c AccumulatorConfig) withDefaults() AccumulatorConfig {
	if c.Quota <= 0 || c.Quota >= 1 {
		c.Quota = 1
	}
	if c.MinObservations <= 0 {
		c.MinObservations = DefaultMinObservations
	}
	if c.StablePatience <= 0 {
		c.StablePatience = DefaultStablePatience
	}
	return c
}

// Accumulator incrementally refines a device fingerprint from a stream
// of approximate-output error strings — the online form of Characterize
// (Algorithm 1) that the enrollment service folds the write-ahead log
// through. Feeding the same observation sequence always produces the
// same fingerprint, weight trajectory, and convergence point; crash
// recovery depends on this determinism.
//
// Convergence is declared the first time the fingerprint has survived
// StablePatience consecutive observations unchanged with at least
// MinObservations total — the online analogue of the paper's finding
// (§5, Fig. 13) that an observer's estimate stabilizes after enough
// approximate outputs. ConvergedAt records where that happened.
//
// An Accumulator is not safe for concurrent use; the enrollment layer
// serializes observations per session (WAL order).
type Accumulator struct {
	cfg     AccumulatorConfig
	lenBits int
	obs     int
	fp      *bitset.Set // current fingerprint estimate; nil before first Add
	votes   []uint32    // per-cell failure counts; allocated only when Quota < 1

	stableFor   int // consecutive observations with the fingerprint unchanged
	convergedAt int // observation index (1-based) of first convergence; 0 = not yet
}

// NewAccumulator returns an empty accumulator over lenBits-bit error
// strings.
func NewAccumulator(lenBits int, cfg AccumulatorConfig) (*Accumulator, error) {
	if lenBits <= 0 {
		return nil, fmt.Errorf("fingerprint: accumulator length %d", lenBits)
	}
	cfg = cfg.withDefaults()
	a := &Accumulator{cfg: cfg, lenBits: lenBits}
	if cfg.Quota < 1 {
		a.votes = make([]uint32, lenBits)
	}
	return a, nil
}

// Len returns the error-string length in bits.
func (a *Accumulator) Len() int { return a.lenBits }

// Config returns the resolved configuration.
func (a *Accumulator) Config() AccumulatorConfig { return a.cfg }

// Add folds one observation — the error string of one approximate
// output — into the fingerprint estimate.
func (a *Accumulator) Add(es *bitset.Set) error {
	if es.Len() != a.lenBits {
		return fmt.Errorf("fingerprint: accumulator length mismatch: observation %d bits, accumulator %d", es.Len(), a.lenBits)
	}
	a.obs++
	changed := false
	if a.votes == nil {
		// Intersection fold: the fingerprint only ever loses bits, so
		// "changed" is a cardinality comparison.
		if a.fp == nil {
			a.fp = es.Clone()
			changed = true
		} else {
			before := a.fp.Count()
			a.fp.And(es)
			changed = a.fp.Count() != before
		}
	} else {
		es.ForEach(func(i int) bool {
			a.votes[i]++
			return true
		})
		need := uint32(math.Ceil(a.cfg.Quota * float64(a.obs)))
		if need < 1 {
			need = 1
		}
		next := bitset.New(a.lenBits)
		for i, v := range a.votes {
			if v >= need {
				next.Set(i)
			}
		}
		changed = a.fp == nil || !next.Equal(a.fp)
		a.fp = next
	}
	if a.obs == 1 || changed {
		a.stableFor = 0
	} else {
		a.stableFor++
	}
	if a.convergedAt == 0 && a.obs >= a.cfg.MinObservations && a.stableFor >= a.cfg.StablePatience {
		a.convergedAt = a.obs
	}
	return nil
}

// Observations returns how many error strings have been folded in.
func (a *Accumulator) Observations() int { return a.obs }

// Weight returns the current fingerprint's bit count (0 before the
// first observation).
func (a *Accumulator) Weight() int {
	if a.fp == nil {
		return 0
	}
	return a.fp.Count()
}

// StableFor returns how many consecutive observations have left the
// fingerprint unchanged.
func (a *Accumulator) StableFor() int { return a.stableFor }

// Converged reports whether the fingerprint has stabilized: at least
// MinObservations folded and the last StablePatience of them left the
// estimate unchanged. Once true it stays true (ConvergedAt keeps the
// point), even if later observations perturb the estimate.
func (a *Accumulator) Converged() bool { return a.convergedAt > 0 }

// ConvergedAt returns the 1-based observation index at which convergence
// was first declared, or 0.
func (a *Accumulator) ConvergedAt() int { return a.convergedAt }

// Fingerprint returns a copy of the current fingerprint estimate, or nil
// before the first observation. The copy is what enrollment promotes
// into the database, so later observations cannot mutate a registered
// entry.
func (a *Accumulator) Fingerprint() *bitset.Set {
	if a.fp == nil {
		return nil
	}
	return a.fp.Clone()
}
