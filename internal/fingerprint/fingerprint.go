// Package fingerprint implements the core contribution of Probable Cause:
// the algorithms that turn approximate-DRAM error patterns into
// device-identifying fingerprints (§5).
//
//   - ErrorString — XOR of an approximate output against the exact data
//     (Algorithm 1, line 2).
//   - Characterize — Algorithm 1: the fingerprint of a chip is the
//     intersection of the error strings of several approximate outputs,
//     keeping only the most volatile (reliably failing) cells.
//   - Distance — Algorithm 3: a modified Jaccard distance that counts the
//     fingerprint bits *missing* from an error string, normalized by the
//     fingerprint weight. Unlike Hamming distance it is insensitive to a
//     mismatch in approximation level between the fingerprint and the
//     output (§5.2).
//   - DB.Identify — Algorithm 2: scan a fingerprint database and return the
//     first fingerprint within a threshold of the output's error string.
//   - Clusterer — Algorithm 4: online clustering of outputs from unknown
//     devices; matching outputs refine the cluster fingerprint by
//     intersection, non-matching outputs open a new cluster.
package fingerprint

import (
	"fmt"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/obs"
)

// Pipeline metrics, all behind obs.On() so library users pay one branch.
// Distance and SparseDistance are the hottest calls in the system (every
// stitch candidate check lands here), hence the latency histograms the
// perf trajectory tracks across PRs.
var (
	cErrorStringCalls = obs.C("fingerprint.errorstring.calls")
	cErrorStringBits  = obs.C("fingerprint.errorstring.bits")
	cDistanceCalls    = obs.C("fingerprint.distance.calls")
	hDistanceNanos    = obs.H("fingerprint.distance.nanos")
	cSparseCalls      = obs.C("fingerprint.sparse_distance.calls")
	hSparseNanos      = obs.H("fingerprint.sparse_distance.nanos")
	cIdentifyHit      = obs.C("fingerprint.identify.hit")
	cIdentifyMiss     = obs.C("fingerprint.identify.miss")
	cIdentifyAmbig    = obs.C("fingerprint.identify.ambiguous")
	cClusterNew       = obs.C("fingerprint.cluster.new")
	cClusterRefine    = obs.C("fingerprint.cluster.refined")
)

// DefaultThreshold is the identification threshold on the modified Jaccard
// distance. The paper determines the threshold experimentally (§7):
// within-class distances sit near 1e-3 and between-class distances near 1,
// two orders of magnitude apart, so any value in the wide gap works. 0.1
// corresponds to the T = 10 %·A bound used in the analytical model (§7.1).
const DefaultThreshold = 0.1

// ErrorString returns the bit positions where approx differs from exact.
func ErrorString(approx, exact []byte) (*bitset.Set, error) {
	if len(approx) != len(exact) {
		return nil, fmt.Errorf("fingerprint: length mismatch approx=%d exact=%d", len(approx), len(exact))
	}
	es := bitset.FromBytes(approx).Xor(bitset.FromBytes(exact))
	if obs.On() {
		cErrorStringCalls.Inc()
		cErrorStringBits.Add(int64(es.Count()))
	}
	return es, nil
}

// Characterize implements Algorithm 1: it computes the error string of every
// approximate result against the exact data and returns their intersection —
// the chip fingerprint. Intersection keeps only cells that failed in *every*
// trial, minimizing the effect of noise ("keeping only the most volatile
// bits"). At least one approximate result is required.
func Characterize(exact []byte, approxes ...[]byte) (*bitset.Set, error) {
	if len(approxes) == 0 {
		return nil, fmt.Errorf("fingerprint: characterize needs at least one approximate result")
	}
	fp, err := ErrorString(approxes[0], exact)
	if err != nil {
		return nil, err
	}
	for _, a := range approxes[1:] {
		es, err := ErrorString(a, exact)
		if err != nil {
			return nil, err
		}
		fp.And(es)
	}
	return fp, nil
}

// Distance implements Algorithm 3: the fraction of fingerprint bits absent
// from the error string, normalized by the fingerprint's Hamming weight.
// Following the paper's footnote, whichever of the two sets has fewer bits
// is treated as the fingerprint, so the metric is symmetric in usage and
// robust to the two inputs having very different error levels.
//
// Degenerate cases (not covered by the paper): if both sets are empty the
// distance is 0 (indistinguishable); if exactly the smaller is empty there is
// no evidence to match on and the distance is 1.
func Distance(errorString, fp *bitset.Set) float64 {
	if obs.On() {
		t0 := time.Now()
		d := distance(errorString, fp)
		cDistanceCalls.Inc()
		hDistanceNanos.Observe(time.Since(t0).Nanoseconds())
		return d
	}
	return distance(errorString, fp)
}

func distance(errorString, fp *bitset.Set) float64 {
	// One fused pass: the cached cardinalities pick the smaller operand in
	// O(1) and the word loop runs exactly once (bitset.MinCardAndNotCount).
	n, m, diff := bitset.MinCardAndNotCount(fp, errorString)
	if n == 0 {
		if m == 0 {
			return 0
		}
		return 1
	}
	return float64(diff) / float64(n)
}

// SparseDistance is Distance over the sparse representation, used by the
// stitching attack where page fingerprints are stored as sorted position
// lists. Semantics are identical to Distance.
func SparseDistance(a, b bitset.Sparse) float64 {
	if obs.On() {
		t0 := time.Now()
		d := sparseDistance(a, b)
		cSparseCalls.Inc()
		hSparseNanos.Observe(time.Since(t0).Nanoseconds())
		return d
	}
	return sparseDistance(a, b)
}

func sparseDistance(a, b bitset.Sparse) float64 {
	if a.Card() > b.Card() {
		a, b = b, a
	}
	if a.Card() == 0 {
		if b.Card() == 0 {
			return 0
		}
		return 1
	}
	return float64(a.DiffCount(b)) / float64(a.Card())
}

// HammingDistance returns the normalized Hamming distance |a⊕b| / len — the
// naive metric the paper rejects (§5.2). Exposed for the ablation experiment
// that reproduces the paper's argument.
func HammingDistance(a, b *bitset.Set) float64 {
	if a.Len() == 0 {
		return 0
	}
	return float64(a.XorCount(b)) / float64(a.Len())
}

// Entry is one named fingerprint in a database.
type Entry struct {
	Name string
	FP   *bitset.Set
}

// DB is the attacker's fingerprint database (supply-chain attack: one entry
// per intercepted device). Name lookups go through an index kept in sync by
// Add/Remove, so Get and Remove cost O(1) instead of a linear scan —
// material once the database holds the thousands of entries the
// large-population experiments register and evict.
type DB struct {
	entries   []Entry
	byName    map[string]int // name → index of its FIRST live entry
	threshold float64

	// Tombstones (ShardedDB's deferred-rebuild Remove): dead[i] marks entry i
	// removed without compacting the slice, so indices — and every derived
	// index structure — stay valid until a threshold-triggered rebuild. nil
	// until the first kill; every scan path guards on deadCount so databases
	// without tombstones pay one integer compare.
	dead      []bool
	deadCount int
}

// NewDB returns an empty database using the given identification threshold;
// pass DefaultThreshold unless an experiment sweeps it.
func NewDB(threshold float64) *DB {
	return &DB{byName: make(map[string]int), threshold: threshold}
}

// Add registers a fingerprint under a name. Duplicate names are permitted;
// Get and Remove address the first entry added under the name.
func (db *DB) Add(name string, fp *bitset.Set) {
	if _, dup := db.byName[name]; !dup {
		db.byName[name] = len(db.entries)
	}
	db.entries = append(db.entries, Entry{Name: name, FP: fp})
	if db.dead != nil {
		db.dead = append(db.dead, false)
	}
}

// Len returns the number of live fingerprints in the database.
func (db *DB) Len() int { return len(db.entries) - db.deadCount }

// alive reports whether entry i is not tombstoned.
func (db *DB) alive(i int) bool { return db.deadCount == 0 || !db.dead[i] }

// kill tombstones entry i in place: the entry slice keeps its shape (so
// every index structure built over it stays valid) and the name index moves
// to the next live entry under the same name. Reports whether i was live.
func (db *DB) kill(i int) bool {
	if i < 0 || i >= len(db.entries) || !db.alive(i) {
		return false
	}
	if db.dead == nil {
		db.dead = make([]bool, len(db.entries))
	}
	db.dead[i] = true
	db.deadCount++
	name := db.entries[i].Name
	if db.byName[name] == i {
		delete(db.byName, name)
		for j := i + 1; j < len(db.entries); j++ {
			if db.entries[j].Name == name && !db.dead[j] {
				db.byName[name] = j
				break
			}
		}
	}
	return true
}

// Get returns the fingerprint stored under name, or ok=false.
func (db *DB) Get(name string) (*bitset.Set, bool) {
	i, ok := db.byName[name]
	if !ok {
		return nil, false
	}
	return db.entries[i].FP, true
}

// Remove deletes the first entry stored under name and reports whether one
// existed. Removal shifts every later index, so the name index is rebuilt —
// O(N), the price Add and Get avoid.
func (db *DB) Remove(name string) bool {
	i, ok := db.byName[name]
	if !ok {
		return false
	}
	db.entries = append(db.entries[:i], db.entries[i+1:]...)
	if db.dead != nil {
		db.dead = append(db.dead[:i], db.dead[i+1:]...)
	}
	db.byName = make(map[string]int, len(db.entries))
	for j, e := range db.entries {
		if _, dup := db.byName[e.Name]; !dup && db.alive(j) {
			db.byName[e.Name] = j
		}
	}
	return true
}

// Entries returns the database contents (shared, not copied).
func (db *DB) Entries() []Entry { return db.entries }

// Identify implements Algorithm 2: it returns the first database entry whose
// distance to the error string is below the threshold, or ok=false if no
// fingerprint matches ("return failed").
func (db *DB) Identify(errorString *bitset.Set) (name string, index int, ok bool) {
	for i, e := range db.entries {
		if !db.alive(i) {
			continue
		}
		if Distance(errorString, e.FP) < db.threshold {
			if obs.On() {
				cIdentifyHit.Inc()
				if db.ambiguousAfter(errorString, i) {
					cIdentifyAmbig.Inc()
				}
			}
			return e.Name, i, true
		}
	}
	if obs.On() {
		cIdentifyMiss.Inc()
	}
	return "", -1, false
}

// ambiguityProbes bounds the extra Distance calls the obs-mode ambiguity
// classifier may spend per hit. The old classifier re-scanned the entire
// remaining database on every hit, doubling identify cost whenever -obs was
// on; sampling caps that overhead at a constant while keeping the statistic
// honest, because a genuine ambiguity (Table 2) implies a fingerprint-space
// collision that is uniform over the database, not adversarially placed
// between probe points.
const ambiguityProbes = 16

// ambiguousAfter reports whether a strided sample of the entries after index
// i also matches the error string. With ambiguityProbes or fewer entries
// remaining the probe is exhaustive and the counter is exact; beyond that it
// is a bounded-cost estimate.
func (db *DB) ambiguousAfter(errorString *bitset.Set, i int) bool {
	rest := db.entries[i+1:]
	stride := 1
	if len(rest) > ambiguityProbes {
		stride = (len(rest) + ambiguityProbes - 1) / ambiguityProbes
	}
	for j := 0; j < len(rest); j += stride {
		if !db.alive(i+1+j) {
			continue
		}
		if Distance(errorString, rest[j].FP) < db.threshold {
			return true
		}
	}
	return false
}

// IdentifyBest returns the database entry with the minimum distance to the
// error string along with that distance, regardless of threshold. Useful for
// reporting margins; Identify is the paper's decision procedure and Decide
// carries the full verdict (including the ambiguity count) in one value.
func (db *DB) IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64) {
	v := db.Decide(errorString)
	return v.Name, v.Index, v.Distance
}

// Clusterer implements Algorithm 4: online clustering of approximate outputs
// by originating device, without pre-characterized fingerprints
// (the eavesdropping attacker).
type Clusterer struct {
	threshold float64
	clusters  []*bitset.Set
	sizes     []int
}

// NewClusterer returns a Clusterer with the given matching threshold.
func NewClusterer(threshold float64) *Clusterer {
	return &Clusterer{threshold: threshold}
}

// Add assigns an error string to a cluster and returns the cluster index.
// A matching cluster's fingerprint is refined by intersection with the new
// error string (as in characterization); otherwise the error string founds a
// new cluster.
func (c *Clusterer) Add(errorString *bitset.Set) int {
	for j, fp := range c.clusters {
		if Distance(errorString, fp) < c.threshold {
			fp.And(errorString)
			c.sizes[j]++
			if obs.On() {
				cClusterRefine.Inc()
			}
			return j
		}
	}
	c.clusters = append(c.clusters, errorString.Clone())
	c.sizes = append(c.sizes, 1)
	if obs.On() {
		cClusterNew.Inc()
	}
	return len(c.clusters) - 1
}

// Count returns the number of clusters (suspected distinct devices).
func (c *Clusterer) Count() int { return len(c.clusters) }

// Size returns the number of outputs assigned to cluster j.
func (c *Clusterer) Size(j int) int { return c.sizes[j] }

// Fingerprint returns cluster j's current fingerprint (shared, not copied).
func (c *Clusterer) Fingerprint(j int) *bitset.Set { return c.clusters[j] }
