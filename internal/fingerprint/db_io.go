package fingerprint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"probablecause/internal/bitset"
)

// dbMagic identifies the fingerprint-database file format.
var dbMagic = [6]byte{'P', 'C', 'D', 'B', '0', '1'}

// WriteTo serializes the database (names, fingerprints, and threshold) in a
// stable binary format. It implements io.WriterTo.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(dbMagic[:])); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(db.entries)))
	binary.LittleEndian.PutUint32(hdr[8:], math.Float32bits(float32(db.threshold)))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	for _, e := range db.entries {
		if len(e.Name) > 0xFFFF {
			return n, fmt.Errorf("fingerprint: name %q too long", e.Name[:32])
		}
		blob, err := e.FP.MarshalBinary()
		if err != nil {
			return n, err
		}
		var eh [6]byte
		binary.LittleEndian.PutUint16(eh[:2], uint16(len(e.Name)))
		binary.LittleEndian.PutUint32(eh[2:], uint32(len(blob)))
		if err := count(bw.Write(eh[:])); err != nil {
			return n, err
		}
		if err := count(bw.Write([]byte(e.Name))); err != nil {
			return n, err
		}
		if err := count(bw.Write(blob)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDB deserializes a database written by WriteTo.
func ReadDB(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("fingerprint: reading magic: %w", err)
	}
	if magic != dbMagic {
		return nil, fmt.Errorf("fingerprint: not a fingerprint database (magic %q)", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("fingerprint: reading header: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:8])
	if count > 1<<24 {
		return nil, fmt.Errorf("fingerprint: implausible entry count %d", count)
	}
	db := NewDB(float64(math.Float32frombits(binary.LittleEndian.Uint32(hdr[8:]))))
	for i := uint64(0); i < count; i++ {
		var eh [6]byte
		if _, err := io.ReadFull(br, eh[:]); err != nil {
			return nil, fmt.Errorf("fingerprint: entry %d header: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint16(eh[:2])
		blobLen := binary.LittleEndian.Uint32(eh[2:])
		if blobLen > 1<<30 {
			return nil, fmt.Errorf("fingerprint: entry %d implausibly large (%d bytes)", i, blobLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("fingerprint: entry %d name: %w", i, err)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("fingerprint: entry %d payload: %w", i, err)
		}
		var fp bitset.Set
		if err := fp.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("fingerprint: entry %d (%s): %w", i, name, err)
		}
		db.Add(string(name), &fp)
	}
	return db, nil
}
