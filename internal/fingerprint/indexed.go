package fingerprint

import (
	"fmt"
	"slices"

	"probablecause/internal/bitset"
	"probablecause/internal/minhash"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
)

// Indexed-identify metrics: how many candidate entries the LSH index sends
// to verification per query (the work sublinear lookup saves versus the
// O(N) scan), how often the verified fallback scan runs, and how many
// queries went through the multi-probe expanded key set.
var (
	cIndexCandidates = obs.C("fingerprint.identify.candidates")
	cIndexFallbacks  = obs.C("fingerprint.identify.fallback_scans")
	cIdentifyProbes  = obs.C("fingerprint.identify.probes")
)

// IndexedConfig parameterizes an IndexedDB.
type IndexedConfig struct {
	// Scheme is the MinHash/LSH scheme used to sign fingerprints and error
	// strings; the zero value selects minhash.DefaultScheme.
	Scheme minhash.Scheme
	// NoFallback disables the verified full-scan fallback that runs when the
	// candidate buckets produce no match. The zero value — fallback ON — is
	// the correctness-preserving configuration: a hit the index misses is
	// still found by the scan, so Identify only ever differs from the plain
	// DB in speed. Set NoFallback for the pure-LSH ablation, where a recall
	// shortfall should be visible rather than papered over.
	NoFallback bool
	// Workers bounds the worker pool used to sign entries during bulk index
	// construction (IndexDB). 0 or 1 signs serially.
	Workers int
	// Probes enables multi-probe candidate expansion: signatures are indexed
	// and looked up under the leave-one-out key set as well as the full band
	// keys, so entries whose signature disagrees with the query in a single
	// row of a band still become candidates. Recall then holds as bands grow
	// more selective at 100k+ entries, at ×(1+Rows) index size. Requires
	// Scheme.Rows ≥ 2.
	Probes bool
}

// IndexedDB wraps a DB with a MinHash/LSH index over its fingerprints so
// Identify and IdentifyBest verify only the entries whose signature collides
// with the query in at least one band, instead of dense-scanning the whole
// database (Algorithm 2's loop made sublinear). Candidates are verified with
// the real Distance metric and visited in ascending entry order, so a hit
// returns the same (name, index) the plain scan would.
type IndexedDB struct {
	db    *DB
	cfg   IndexedConfig
	index *minhash.Index[int]
}

// NewIndexedDB returns an empty indexed database with the given
// identification threshold.
func NewIndexedDB(threshold float64, cfg IndexedConfig) (*IndexedDB, error) {
	return IndexDB(NewDB(threshold), cfg)
}

// IndexDB builds an LSH index over an existing database and returns the
// indexed view. The DB is shared, not copied: entries added through the
// returned IndexedDB land in db too. Entries must not be added directly to
// db afterwards — they would be invisible to the index.
func IndexDB(db *DB, cfg IndexedConfig) (*IndexedDB, error) {
	if cfg.Scheme == (minhash.Scheme{}) {
		cfg.Scheme = minhash.DefaultScheme
	}
	var ix *minhash.Index[int]
	var err error
	if cfg.Probes {
		ix, err = minhash.NewMultiProbeIndex[int](cfg.Scheme)
	} else {
		ix, err = minhash.NewIndex[int](cfg.Scheme)
	}
	if err != nil {
		return nil, err
	}
	x := &IndexedDB{db: db, cfg: cfg, index: ix}
	// Bulk build: signing dominates (Rows·Bands hashes over every set bit),
	// so fan it across the pool; the index insert itself is serial.
	sigs := make([]minhash.Signature, len(db.entries))
	pool.Map(cfg.Workers, len(db.entries), func(i int) {
		sigs[i] = x.sign(db.entries[i].FP)
	})
	for i, sig := range sigs {
		x.index.Add(sig, i)
	}
	return x, nil
}

// sign computes the MinHash signature of a dense set via its sparse view.
func (x *IndexedDB) sign(s *bitset.Set) minhash.Signature {
	return x.cfg.Scheme.Sign(bitset.Sparse(s.Positions()))
}

// Add registers a fingerprint under a name and indexes its signature.
func (x *IndexedDB) Add(name string, fp *bitset.Set) {
	x.index.Add(x.sign(fp), len(x.db.entries))
	x.db.Add(name, fp)
}

// Len returns the number of fingerprints in the database.
func (x *IndexedDB) Len() int { return x.db.Len() }

// DB returns the underlying database (shared, not copied).
func (x *IndexedDB) DB() *DB { return x.db }

// candidates returns the entry indices colliding with the error string in at
// least one band (or probe bucket), in ascending order so verification visits
// entries exactly as Algorithm 2's scan would. The index deduplicates the
// merged probe buckets before returning, so no entry is verified twice.
func (x *IndexedDB) candidates(errorString *bitset.Set) []int {
	out := x.index.Candidates(x.sign(errorString))
	sortInts(out)
	if obs.On() {
		cIndexCandidates.Add(int64(len(out)))
		if x.index.MultiProbe() {
			cIdentifyProbes.Inc()
		}
	}
	return out
}

// Identify implements Algorithm 2 over the candidate buckets: it returns the
// first candidate entry within the threshold of the error string. If no
// candidate matches and the fallback is enabled (the default), it runs the
// plain verified scan, so a true match missed by the index is still found.
func (x *IndexedDB) Identify(errorString *bitset.Set) (name string, index int, ok bool) {
	cands := x.candidates(errorString)
	for k, i := range cands {
		if !x.db.alive(i) {
			continue
		}
		e := x.db.entries[i]
		if Distance(errorString, e.FP) < x.db.threshold {
			if obs.On() {
				cIdentifyHit.Inc()
				if x.ambiguousAmong(errorString, cands[k+1:]) {
					cIdentifyAmbig.Inc()
				}
			}
			return e.Name, i, true
		}
	}
	if !x.cfg.NoFallback {
		if obs.On() {
			cIndexFallbacks.Inc()
		}
		return x.db.Identify(errorString)
	}
	if obs.On() {
		cIdentifyMiss.Inc()
	}
	return "", -1, false
}

// ambiguousAmong reports whether any of the remaining candidate entries also
// matches — the indexed analogue of DB.ambiguousAfter, already restricted to
// the only entries that could plausibly sit under the threshold.
func (x *IndexedDB) ambiguousAmong(errorString *bitset.Set, rest []int) bool {
	for _, i := range rest {
		if !x.db.alive(i) {
			continue
		}
		if Distance(errorString, x.db.entries[i].FP) < x.db.threshold {
			return true
		}
	}
	return false
}

// IdentifyBest returns the minimum-distance entry among the candidate
// buckets. When no candidate sits under the threshold and the fallback is
// enabled, the verified full scan runs instead, so the result is exact
// whenever it matters: a sub-threshold best is always in some candidate
// bucket or found by the fallback, and a reported miss carries the true
// global best. With NoFallback set the margin is computed over candidates
// only.
func (x *IndexedDB) IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64) {
	v := x.Decide(errorString)
	return v.Name, v.Index, v.Distance
}

// ParallelIdentify runs Identify for every error string across a bounded
// worker pool and returns the matches in input order. See
// DB.ParallelIdentify for the determinism contract.
func (x *IndexedDB) ParallelIdentify(errorStrings []*bitset.Set, workers int) []Match {
	out := make([]Match, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		name, idx, ok := x.Identify(errorStrings[i])
		out[i] = Match{Name: name, Index: idx, OK: ok}
	})
	return out
}

// Match is one batch-identification outcome: the fields Identify returns,
// in struct form so a batch can be returned as a slice.
type Match struct {
	Name  string
	Index int
	OK    bool
}

// ParallelIdentify runs Identify for every error string across a bounded
// worker pool (pool.Workers semantics: workers <= 0 means one per CPU) and
// returns the matches in input order. Each slot equals exactly what a serial
// Identify call on that error string returns — the database is only read, so
// fan-out cannot change any decision, just the wall-clock.
func (db *DB) ParallelIdentify(errorStrings []*bitset.Set, workers int) []Match {
	out := make([]Match, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		name, idx, ok := db.Identify(errorStrings[i])
		out[i] = Match{Name: name, Index: idx, OK: ok}
	})
	return out
}

// sortIntsCutoff is the length above which sortInts switches from insertion
// sort to slices.Sort. Exact-index candidate lists run 0–2 entries, where
// insertion sort is branch-cheap; multi-probe expansion at 100k entries makes
// lists of dozens routine, where the O(n²) tail would dominate verification.
const sortIntsCutoff = 32

// sortInts sorts a candidate list: insertion sort for the short lists the
// exact index returns, slices.Sort beyond the cutoff.
func sortInts(s []int) {
	if len(s) > sortIntsCutoff {
		slices.Sort(s)
		return
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Identifier is the shared identification surface of DB, IndexedDB, and
// ShardedDB; experiment drivers and the serving layer take it so the scan,
// indexed, and sharded paths are swappable.
type Identifier interface {
	Identify(errorString *bitset.Set) (name string, index int, ok bool)
	IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64)
	Decide(errorString *bitset.Set) Verdict
	ParallelIdentify(errorStrings []*bitset.Set, workers int) []Match
	ParallelDecide(errorStrings []*bitset.Set, workers int) []Verdict
	Len() int
}

var (
	_ Identifier = (*DB)(nil)
	_ Identifier = (*IndexedDB)(nil)
	_ Identifier = (*ShardedDB)(nil)
)

// String renders a small summary for logs.
func (x *IndexedDB) String() string {
	return fmt.Sprintf("indexeddb(entries=%d, bands=%d, rows=%d, fallback=%v)",
		x.db.Len(), x.cfg.Scheme.Bands, x.cfg.Scheme.Rows, !x.cfg.NoFallback)
}
