package fingerprint

import (
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

func TestIDNamespaceRoundTrip(t *testing.T) {
	cases := []IDNamespace{
		{},                   // identity
		{Base: 0, Stride: 1}, // explicit identity
		{Base: 0, Stride: 2},
		{Base: 1, Stride: 2},
		{Base: 2, Stride: 5},
	}
	for _, ns := range cases {
		for local := 0; local < 100; local++ {
			g := ns.Global(local)
			back, ok := ns.Local(g)
			if !ok || back != local {
				t.Fatalf("ns %+v: local %d → global %d → (%d, %v)", ns, local, g, back, ok)
			}
		}
		// The -1 "no match" sentinel passes through both directions.
		if g := ns.Global(-1); g != -1 {
			t.Fatalf("ns %+v: Global(-1) = %d", ns, g)
		}
		if l, ok := ns.Local(-1); !ok || l != -1 {
			t.Fatalf("ns %+v: Local(-1) = (%d, %v)", ns, l, ok)
		}
	}
}

func TestIDNamespaceDisjointAndMonotone(t *testing.T) {
	const stride = 3
	seen := map[int]int{}
	for p := 0; p < stride; p++ {
		ns := IDNamespace{Base: p, Stride: stride}
		prev := -1
		for local := 0; local < 50; local++ {
			g := ns.Global(local)
			if g <= prev {
				t.Fatalf("partition %d: Global not monotone at local %d", p, local)
			}
			prev = g
			if owner, clash := seen[g]; clash {
				t.Fatalf("global id %d claimed by partitions %d and %d", g, owner, p)
			}
			seen[g] = p
			// A foreign namespace must reject the id.
			other := IDNamespace{Base: (p + 1) % stride, Stride: stride}
			if _, ok := other.Local(g); ok {
				t.Fatalf("partition %d id %d accepted by partition %d's namespace", p, g, other.Base)
			}
		}
	}
}

func TestIDNamespaceIdentityZeroValue(t *testing.T) {
	var ns IDNamespace
	if !ns.Identity() {
		t.Fatal("zero namespace is not identity")
	}
	v := Verdict{Name: "d", Index: 7, Distance: 0.1, Matches: 2}
	if got := ns.Renumber(v); got != v {
		t.Fatalf("identity Renumber changed the verdict: %+v", got)
	}
}

// randomFP draws a sparse fingerprint for equivalence tests.
func randomFP(src *prng.Source, bits int) *bitset.Set {
	fp := bitset.New(bits)
	for j := 0; j < 40; j++ {
		fp.Set(int(src.Uint64() % uint64(bits)))
	}
	return fp
}

// TestAddWithIDEquivalence: a database built with explicit dense ids is
// indistinguishable from one built with Add, and a database built with
// strided ids answers with the strided id while preserving the verdict's
// name, distance, and match count.
func TestAddWithIDEquivalence(t *testing.T) {
	const bits = 2048
	const entries = 40
	src := prng.New(0xAD01)
	dense, err := NewShardedDB(DefaultThreshold, ShardedConfig{Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := NewShardedDB(DefaultThreshold, ShardedConfig{Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := NewShardedDB(DefaultThreshold, ShardedConfig{Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	const stride = 2
	fps := make([]*bitset.Set, entries)
	for i := 0; i < entries; i++ {
		fps[i] = randomFP(src, bits)
		name := "dev-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		id := dense.Add(name, fps[i])
		if id != i {
			t.Fatalf("dense Add returned id %d, want %d", id, i)
		}
		explicit.AddWithID(i, name, fps[i])
		strided.AddWithID(i*stride+1, name, fps[i])
	}
	for q := 0; q < 100; q++ {
		// Queries near enrolled entries plus pure noise.
		var es *bitset.Set
		if q < entries {
			es = fps[q].Clone()
			es.Set(int(src.Uint64() % uint64(bits)))
		} else {
			es = randomFP(src, bits)
		}
		dv := dense.Decide(es)
		ev := explicit.Decide(es)
		if dv != ev {
			t.Fatalf("query %d: dense %+v != explicit %+v", q, dv, ev)
		}
		sv := strided.Decide(es)
		if sv.Name != dv.Name || sv.Distance != dv.Distance || sv.Matches != dv.Matches {
			t.Fatalf("query %d: strided verdict %+v diverged from dense %+v", q, sv, dv)
		}
		wantIdx := dv.Index
		if wantIdx >= 0 {
			wantIdx = wantIdx*stride + 1
		}
		if sv.Index != wantIdx {
			t.Fatalf("query %d: strided index %d, want %d", q, sv.Index, wantIdx)
		}
	}
	// Dense ids keep allocating past the highest explicit id.
	next := explicit.Add("tail", randomFP(src, bits))
	if next != entries {
		t.Fatalf("Add after AddWithID allocated %d, want %d", next, entries)
	}
}
