package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	n := NewNormal(0, 1)
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	n := NewNormal(10, 3)
	for _, p := range []float64{1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1 - 1e-6} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNormal with stddev=0 did not panic")
		}
	}()
	NewNormal(1, 0)
}

func TestQuantilePanicsOutsideOpenInterval(t *testing.T) {
	n := NewNormal(0, 1)
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			n.Quantile(p)
		}()
	}
}

func TestTwoPieceNormalReducesToNormal(t *testing.T) {
	tp := NewTwoPieceNormal(5, 2, 2)
	n := NewNormal(5, 2)
	for _, x := range []float64{-3, 0, 3, 5, 7, 12} {
		if got, want := tp.CDF(x), n.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("symmetric TwoPiece CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestTwoPieceNormalSkew(t *testing.T) {
	// SigmaLeft > SigmaRight: more mass below the mode (skewed toward high
	// volatility / short retention, the DDR2 case).
	tp := NewTwoPieceNormal(10, 4, 1)
	if got := tp.CDF(10); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("mass below mode = %v, want 0.8", got)
	}
	// Median must be below the mode.
	if m := tp.Quantile(0.5); m >= 10 {
		t.Errorf("median = %v, want < mode 10", m)
	}
}

func TestTwoPieceQuantileInvertsCDF(t *testing.T) {
	tp := NewTwoPieceNormal(8, 3, 1.5)
	for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.6, 0.75, 0.9, 0.999} {
		x := tp.Quantile(p)
		if got := tp.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	dists := []Distribution{NewNormal(5, 2), NewTwoPieceNormal(5, 3, 1)}
	for _, d := range dists {
		prev := -1.0
		for x := -10.0; x <= 20; x += 0.25 {
			v := d.CDF(x)
			if v < prev-1e-15 {
				t.Fatalf("%s: CDF not monotone at %v", d, x)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s: CDF(%v) = %v outside [0,1]", d, x, v)
			}
			prev = v
		}
	}
}

func TestRetentionScale(t *testing.T) {
	if got := RetentionScale(40, 40); got != 1 {
		t.Fatalf("scale at reference = %v, want 1", got)
	}
	if got := RetentionScale(50, 40); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("scale +10C = %v, want 0.5", got)
	}
	if got := RetentionScale(30, 40); math.Abs(got-2) > 1e-12 {
		t.Fatalf("scale -10C = %v, want 2", got)
	}
	// 60C vs 40C: quarter retention.
	if got := RetentionScale(60, 40); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("scale +20C = %v, want 0.25", got)
	}
}

// Property: quantile is monotone in p for both distribution families.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		p1 := (float64(a) + 1) / 65538
		p2 := (float64(b) + 1) / 65538
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		n := NewNormal(3, 1.5)
		tp := NewTwoPieceNormal(3, 2, 0.7)
		return n.Quantile(p1) <= n.Quantile(p2)+1e-12 && tp.Quantile(p1) <= tp.Quantile(p2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStdNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3, 0.45} {
		if got := StdNormalQuantile(p) + StdNormalQuantile(1-p); math.Abs(got) > 1e-9 {
			t.Errorf("quantile asymmetry at p=%v: %v", p, got)
		}
	}
	if got := StdNormalQuantile(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("median quantile = %v, want 0", got)
	}
}
