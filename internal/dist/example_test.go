package dist_test

import (
	"fmt"

	"probablecause/internal/dist"
)

// Example shows the retention model: a Gaussian distribution at the
// reference temperature, scaled by the halve-per-10°C thermal law.
func Example() {
	d := dist.NewNormal(10, 2) // seconds at 40 °C
	fmt.Printf("1%% of cells decay within %.2fs at 40°C\n", d.Quantile(0.01))
	fmt.Printf("retention scale at 60°C: %.2f\n", dist.RetentionScale(60, 40))
	// Output:
	// 1% of cells decay within 5.35s at 40°C
	// retention scale at 60°C: 0.25
}
