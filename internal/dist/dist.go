// Package dist models the DRAM retention-time distributions used by the
// cell-level simulator.
//
// Section 2 of the paper: "The distribution of how quickly DRAM cells decay
// follows a Gaussian distribution [27]" — variation comes from cell
// capacitance (partly mask-dependent) and access-transistor leakage
// (mask-independent, dominant). Section 8.1 adds that on the DDR2 platform
// "the probability distribution of cell volatilities ... is skewed toward
// higher volatility where the older DRAM had no skew"; we model that with a
// two-piece Gaussian.
//
// Temperature scaling: DRAM retention roughly halves per +10 °C (Hamamoto et
// al. [10], the reference the paper cites for thermal sensitivity). The
// simulator uses RetentionScale to convert a cell's reference retention to
// the operating temperature.
package dist

import (
	"fmt"
	"math"
)

// Distribution describes a continuous probability distribution over
// retention times (seconds) at the reference temperature.
type Distribution interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the x with CDF(x) = p, for p in (0, 1).
	Quantile(p float64) float64
	// String describes the distribution for logs and reports.
	String() string
}

// Normal is the Gaussian retention distribution of the paper's KM41464A
// platform.
type Normal struct {
	Mean   float64
	Stddev float64
}

// NewNormal returns a Gaussian distribution. It panics if stddev <= 0.
func NewNormal(mean, stddev float64) Normal {
	if stddev <= 0 {
		panic("dist: non-positive stddev")
	}
	return Normal{Mean: mean, Stddev: stddev}
}

// CDF returns the Gaussian CDF at x.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mean)/(n.Stddev*math.Sqrt2))
}

// Quantile returns the inverse CDF at p via the erfinv-free bisection-refined
// rational approximation (Acklam), accurate to ~1e-9 over (0,1).
func (n Normal) Quantile(p float64) float64 {
	return n.Mean + n.Stddev*StdNormalQuantile(p)
}

func (n Normal) String() string {
	return fmt.Sprintf("Normal(mean=%.3gs, stddev=%.3gs)", n.Mean, n.Stddev)
}

// TwoPieceNormal is a split-normal distribution: Gaussian with standard
// deviation SigmaLeft below the mode and SigmaRight above it. With
// SigmaLeft > SigmaRight the mass is skewed toward low retention (high
// volatility), matching the DDR2 observation in §8.1.
type TwoPieceNormal struct {
	Mode       float64
	SigmaLeft  float64
	SigmaRight float64
}

// NewTwoPieceNormal returns a split-normal distribution. It panics if either
// sigma is non-positive.
func NewTwoPieceNormal(mode, sigmaLeft, sigmaRight float64) TwoPieceNormal {
	if sigmaLeft <= 0 || sigmaRight <= 0 {
		panic("dist: non-positive sigma")
	}
	return TwoPieceNormal{Mode: mode, SigmaLeft: sigmaLeft, SigmaRight: sigmaRight}
}

// CDF returns the split-normal CDF at x.
func (t TwoPieceNormal) CDF(x float64) float64 {
	wl := t.SigmaLeft / (t.SigmaLeft + t.SigmaRight)
	if x <= t.Mode {
		// Left half scaled to total mass wl.
		phi := 0.5 * math.Erfc(-(x-t.Mode)/(t.SigmaLeft*math.Sqrt2)) // in [0, 0.5]
		return 2 * wl * phi
	}
	wr := 1 - wl
	phi := 0.5 * math.Erfc(-(x-t.Mode)/(t.SigmaRight*math.Sqrt2)) // in [0.5, 1]
	return wl + 2*wr*(phi-0.5)
}

// Quantile returns the inverse CDF at p.
func (t TwoPieceNormal) Quantile(p float64) float64 {
	wl := t.SigmaLeft / (t.SigmaLeft + t.SigmaRight)
	if p <= wl {
		// Solve 2*wl*Phi((x-mode)/sl) = p  =>  Phi = p/(2wl) in (0, 0.5].
		return t.Mode + t.SigmaLeft*StdNormalQuantile(p/(2*wl))
	}
	wr := 1 - wl
	// Solve wl + 2*wr*(Phi-0.5) = p  =>  Phi = 0.5 + (p-wl)/(2wr).
	return t.Mode + t.SigmaRight*StdNormalQuantile(0.5+(p-wl)/(2*wr))
}

func (t TwoPieceNormal) String() string {
	return fmt.Sprintf("TwoPieceNormal(mode=%.3gs, σl=%.3gs, σr=%.3gs)", t.Mode, t.SigmaLeft, t.SigmaRight)
}

// StdNormalQuantile returns the standard normal inverse CDF at p using Peter
// Acklam's rational approximation with one Halley refinement step. It panics
// for p outside (0, 1).
func StdNormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("dist: quantile probability %v outside (0,1)", p))
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement against the true CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// RetentionScale returns the multiplicative retention scaling at temperature
// tempC relative to refC: retention halves for every +10 °C (the standard
// first-order thermal model for DRAM charge leakage).
func RetentionScale(tempC, refC float64) float64 {
	return math.Exp2(-(tempC - refC) / 10)
}
