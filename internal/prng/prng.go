// Package prng provides the deterministic random-number substrate used by
// every simulator in this repository.
//
// Reproducibility is a hard requirement: each experiment in the paper is
// regenerated from a fixed seed, so results are bit-identical across runs and
// machines. We therefore implement our own generators rather than depending
// on math/rand's unspecified-across-versions stream:
//
//   - SplitMix64: seed expansion and a stateless pseudo-random function (PRF)
//     used by the mathematical DRAM model (a cell's volatility must be a pure
//     function of (chip, page, bit) so the model needs no per-cell state).
//   - Xoshiro256**: the sequential generator used by the cell-level DRAM
//     simulator and workload generators.
//   - Box–Muller Gaussians, used for retention-time distributions and trial
//     noise.
package prng

import "math"

// SplitMix64 advances the SplitMix64 state and returns the next value. It is
// the canonical seed expander (Steele, Lea, Flood 2014).
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 hashes x through one SplitMix64 round. It is a high-quality
// stateless mixing function: distinct inputs give effectively independent
// outputs.
func Mix64(x uint64) uint64 {
	z := x + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Hash combines an arbitrary number of 64-bit values into one well-mixed
// value. It is the PRF behind the mathematical DRAM model: the volatility of
// cell i on page p of chip c is derived from Hash(chipSeed, p, i).
func Hash(parts ...uint64) uint64 {
	h := uint64(0x2545F4914F6CDD1D)
	for _, p := range parts {
		h = Mix64(h ^ p)
	}
	return h
}

// Uniform01 maps a 64-bit hash to a float64 in [0, 1).
func Uniform01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
	// cached spare normal from Box–Muller
	spare    float64
	hasSpare bool
}

// New returns a Source seeded from the given seed via SplitMix64 expansion.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&sm)
	}
	// A state of all zeros is invalid for xoshiro; SplitMix64 cannot produce
	// four zero outputs from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return Uniform01(s.Uint64())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster; plain
	// rejection keeps the stream easy to reason about and is fast enough.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// NormFloat64 returns a standard normal deviate via Box–Muller. Two deviates
// are produced per transform; the spare is cached.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// Normal returns a normal deviate with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fill fills buf with pseudo-random bytes.
func (s *Source) Fill(buf []byte) {
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := s.Uint64()
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
	if i < len(buf) {
		v := s.Uint64()
		for ; i < len(buf); i++ {
			buf[i] = byte(v)
			v >>= 8
		}
	}
}
