package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d has %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(17)
	data := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	s.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	for _, v := range data {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed contents: %v", data)
	}
}

func TestFillCoversAllBytes(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		buf := make([]byte, n)
		s.Fill(buf)
		if n >= 16 {
			zeros := 0
			for _, b := range buf {
				if b == 0 {
					zeros++
				}
			}
			if zeros == n {
				t.Fatalf("Fill produced all zeros for n=%d", n)
			}
		}
	}
}

func TestHashIsOrderSensitive(t *testing.T) {
	if Hash(1, 2) == Hash(2, 1) {
		t.Fatal("Hash must be order sensitive")
	}
	if Hash(1) == Hash(1, 0) {
		t.Fatal("Hash must be length sensitive")
	}
}

func TestUniform01Range(t *testing.T) {
	for _, h := range []uint64{0, 1, math.MaxUint64, 0xDEADBEEF} {
		u := Uniform01(h)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01(%#x) = %v", h, u)
		}
	}
}

// Property: Mix64 is a bijection-quality mixer — no collisions on distinct
// small inputs, and Hash derived uniforms look uniform in aggregate.
func TestQuickHashDistinct(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Hash(a) != Hash(b) || Hash(a, a) != Hash(b, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHashUniformity(t *testing.T) {
	const n = 100000
	var sum float64
	for i := uint64(0); i < n; i++ {
		sum += Uniform01(Hash(12345, i))
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("hash-uniform mean = %v, want ~0.5", mean)
	}
}
