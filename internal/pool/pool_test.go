package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		Map(workers, n, func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	called := false
	Map(4, 0, func(int) { called = true })
	Map(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty batch")
	}
}

func TestMapDeterministicResults(t *testing.T) {
	const n = 500
	run := func(workers int) []int {
		out := make([]int, n)
		Map(workers, n, func(i int) { out[i] = i * i })
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], serial[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errLo := errors.New("low")
	for _, workers := range []int{1, 4} {
		err := MapErr(workers, 100, func(i int) error {
			switch i {
			case 17:
				return errLo
			case 80:
				return fmt.Errorf("high")
			}
			return nil
		})
		if !errors.Is(err, errLo) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
	if err := MapErr(4, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
