// Package pool is the shared bounded-worker substrate behind every parallel
// path in the repository: batch identification (fingerprint.ParallelIdentify),
// parallel stitching (stitch.Config.Workers), and the experiment drivers that
// fan independent trials across cores.
//
// The package makes one promise the rest of the system leans on hard:
// *scheduling never influences results*. Map hands out indices, workers write
// into caller-owned slots keyed by index, and reductions happen serially in
// index order at the call site. A run with Workers=1 and a run with
// Workers=32 therefore produce byte-identical output — the property the
// determinism tests and the `-workers=1` vs `-workers=N` acceptance diffs
// rely on.
//
// Instrumentation follows the repository convention (internal/obs): when
// observability is off every metric update is skipped behind a single atomic
// branch; when it is on, the pool exposes queue depth, busy-worker counts,
// and task throughput so saturation is visible in -obs.report snapshots and
// the debug server.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"probablecause/internal/obs"
)

// Pool metrics. Queue depth is the number of not-yet-claimed indices across
// all live batches; busy is the number of workers currently inside a task
// body. Utilization is busy/size sampled at task boundaries.
var (
	cBatches = obs.C("pool.batches")
	cTasks   = obs.C("pool.tasks")
	gQueue   = obs.G("pool.queue.depth")
	gBusy    = obs.G("pool.workers.busy")
	hBatchN  = obs.H("pool.batch.tasks")
)

// Workers resolves a worker-count knob to a concrete pool size: n if
// positive, else one worker per available CPU (GOMAXPROCS). This is the
// interpretation every -workers flag shares, so 0 means "use the machine".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines and
// returns when all calls have finished. workers <= 1 runs inline on the
// calling goroutine — the serial path and the parallel path are the same
// code, so "serial" always means "Map with one worker".
//
// Indices are claimed atomically in ascending order but may complete in any
// order; fn must write results only to slots owned by its index. Map itself
// adds no synchronization around fn's side effects beyond the happens-before
// edge of its return.
func Map(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	track := obs.On()
	if track {
		cBatches.Inc()
		cTasks.Add(int64(n))
		hBatchN.Observe(int64(n))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	if track {
		gQueue.Add(int64(n))
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if track {
					gQueue.Add(-1)
					gBusy.Add(1)
				}
				fn(i)
				if track {
					gBusy.Add(-1)
				}
			}
		}()
	}
	wg.Wait()
}

// MapErr is Map for fallible tasks. Every index runs regardless of other
// indices' failures (work is independent by contract); the returned error is
// the one produced by the *lowest* failing index, so the error surfaced is
// deterministic across worker counts.
func MapErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	Map(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
