package minhash

import (
	"math"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

func randomSet(seed uint64, n int, universe int) bitset.Sparse {
	rng := prng.New(seed)
	pos := make([]uint32, n)
	for i := range pos {
		pos[i] = uint32(rng.Intn(universe))
	}
	return bitset.NewSparse(pos)
}

// overlapSet returns a perturbation of s sharing roughly frac of elements.
func overlapSet(seed uint64, s bitset.Sparse, frac float64, universe int) bitset.Sparse {
	rng := prng.New(seed)
	out := make([]uint32, 0, len(s))
	for _, x := range s {
		if rng.Float64() < frac {
			out = append(out, x)
		} else {
			out = append(out, uint32(rng.Intn(universe)))
		}
	}
	return bitset.NewSparse(out)
}

func TestSchemeValidate(t *testing.T) {
	if err := (Scheme{Bands: 0, Rows: 4}).Validate(); err == nil {
		t.Error("0 bands accepted")
	}
	if err := (Scheme{Bands: 4, Rows: 0}).Validate(); err == nil {
		t.Error("0 rows accepted")
	}
	if err := DefaultScheme.Validate(); err != nil {
		t.Errorf("default scheme invalid: %v", err)
	}
	if DefaultScheme.Size() != 32 {
		t.Errorf("default size = %d, want 32", DefaultScheme.Size())
	}
}

func TestSignDeterministic(t *testing.T) {
	s := randomSet(1, 300, 32768)
	a := DefaultScheme.Sign(s)
	b := DefaultScheme.Sign(s.Clone())
	if Similarity(a, b) != 1 {
		t.Fatal("same set produced different signatures")
	}
}

func TestSimilarityEstimatesJaccard(t *testing.T) {
	scheme := Scheme{Bands: 64, Rows: 4, Seed: 7} // 256 hashes: tight estimate
	a := randomSet(2, 400, 1<<20)
	b := overlapSet(3, a, 0.8, 1<<20)
	trueJ := float64(a.IntersectCount(b)) / float64(a.Union(b).Card())
	est := Similarity(scheme.Sign(a), scheme.Sign(b))
	if math.Abs(est-trueJ) > 0.12 {
		t.Fatalf("estimated J=%v, true J=%v", est, trueJ)
	}
}

func TestSimilarityDisjointNearZero(t *testing.T) {
	a := randomSet(4, 300, 1<<20)
	b := randomSet(5, 300, 1<<20)
	if sim := Similarity(DefaultScheme.Sign(a), DefaultScheme.Sign(b)); sim > 0.2 {
		t.Fatalf("disjoint similarity = %v", sim)
	}
}

func TestSimilarityLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched signatures")
		}
	}()
	Similarity(Signature{1}, Signature{1, 2})
}

func TestEmptySetSentinel(t *testing.T) {
	empty := DefaultScheme.Sign(nil)
	real := DefaultScheme.Sign(randomSet(6, 100, 32768))
	if Similarity(empty, real) != 0 {
		t.Fatal("empty-set signature collided with a real one")
	}
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	ix, err := NewIndex[int](DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	var sets []bitset.Sparse
	for i := 0; i < 200; i++ {
		s := randomSet(uint64(100+i), 328, 32768)
		sets = append(sets, s)
		ix.Add(DefaultScheme.Sign(s), i)
	}
	// Query with a 96%-overlap perturbation of set 42 (the trial-noise case).
	q := overlapSet(999, sets[42], 0.96, 32768)
	cands := ix.Candidates(DefaultScheme.Sign(q))
	found := false
	for _, c := range cands {
		if c == 42 {
			found = true
		}
	}
	if !found {
		t.Fatal("near-duplicate page not among candidates")
	}
	if len(cands) > 20 {
		t.Fatalf("%d candidates for one query — banding not selective", len(cands))
	}
}

func TestIndexNoviceQueryReturnsFewCandidates(t *testing.T) {
	ix, err := NewIndex[int](DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ix.Add(DefaultScheme.Sign(randomSet(uint64(1000+i), 328, 32768)), i)
	}
	q := randomSet(77777, 328, 32768) // unrelated page
	if cands := ix.Candidates(DefaultScheme.Sign(q)); len(cands) > 10 {
		t.Fatalf("%d false candidates for an unrelated page", len(cands))
	}
}

func TestIndexCandidatesDeduplicated(t *testing.T) {
	ix, err := NewIndex[string](DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	s := randomSet(8, 300, 32768)
	sig := DefaultScheme.Sign(s)
	ix.Add(sig, "x") // identical signature collides in all 8 bands
	cands := ix.Candidates(sig)
	if len(cands) != 1 || cands[0] != "x" {
		t.Fatalf("candidates = %v, want exactly [x]", cands)
	}
	if ix.Len() != DefaultScheme.Bands {
		t.Fatalf("Len = %d, want %d", ix.Len(), DefaultScheme.Bands)
	}
}

func TestNewIndexRejectsBadScheme(t *testing.T) {
	if _, err := NewIndex[int](Scheme{}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

// Property: minhash similarity is monotone in true Jaccard similarity on
// average — higher-overlap perturbations score at least as high as
// lower-overlap ones.
func TestQuickSimilarityMonotone(t *testing.T) {
	scheme := Scheme{Bands: 32, Rows: 4, Seed: 17}
	base := randomSet(999, 400, 1<<20)
	prev := -1.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		pert := overlapSet(uint64(frac*1000), base, frac, 1<<20)
		sim := Similarity(scheme.Sign(base), scheme.Sign(pert))
		// Allow small estimator noise between adjacent levels.
		if sim < prev-0.12 {
			t.Fatalf("similarity dropped from %v to %v at overlap %v", prev, sim, frac)
		}
		prev = sim
	}
}

// Property: identical sets always collide in every band.
func TestBandKeysSelfCollision(t *testing.T) {
	s := randomSet(7, 300, 32768)
	a := DefaultScheme.BandKeys(DefaultScheme.Sign(s))
	b := DefaultScheme.BandKeys(DefaultScheme.Sign(s.Clone()))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("band %d keys differ for identical sets", i)
		}
	}
}
