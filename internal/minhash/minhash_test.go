package minhash

import (
	"math"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

func randomSet(seed uint64, n int, universe int) bitset.Sparse {
	rng := prng.New(seed)
	pos := make([]uint32, n)
	for i := range pos {
		pos[i] = uint32(rng.Intn(universe))
	}
	return bitset.NewSparse(pos)
}

// overlapSet returns a perturbation of s sharing roughly frac of elements.
func overlapSet(seed uint64, s bitset.Sparse, frac float64, universe int) bitset.Sparse {
	rng := prng.New(seed)
	out := make([]uint32, 0, len(s))
	for _, x := range s {
		if rng.Float64() < frac {
			out = append(out, x)
		} else {
			out = append(out, uint32(rng.Intn(universe)))
		}
	}
	return bitset.NewSparse(out)
}

func TestSchemeValidate(t *testing.T) {
	if err := (Scheme{Bands: 0, Rows: 4}).Validate(); err == nil {
		t.Error("0 bands accepted")
	}
	if err := (Scheme{Bands: 4, Rows: 0}).Validate(); err == nil {
		t.Error("0 rows accepted")
	}
	if err := DefaultScheme.Validate(); err != nil {
		t.Errorf("default scheme invalid: %v", err)
	}
	if DefaultScheme.Size() != 32 {
		t.Errorf("default size = %d, want 32", DefaultScheme.Size())
	}
}

func TestSignDeterministic(t *testing.T) {
	s := randomSet(1, 300, 32768)
	a := DefaultScheme.Sign(s)
	b := DefaultScheme.Sign(s.Clone())
	if Similarity(a, b) != 1 {
		t.Fatal("same set produced different signatures")
	}
}

func TestSimilarityEstimatesJaccard(t *testing.T) {
	scheme := Scheme{Bands: 64, Rows: 4, Seed: 7} // 256 hashes: tight estimate
	a := randomSet(2, 400, 1<<20)
	b := overlapSet(3, a, 0.8, 1<<20)
	trueJ := float64(a.IntersectCount(b)) / float64(a.Union(b).Card())
	est := Similarity(scheme.Sign(a), scheme.Sign(b))
	if math.Abs(est-trueJ) > 0.12 {
		t.Fatalf("estimated J=%v, true J=%v", est, trueJ)
	}
}

func TestSimilarityDisjointNearZero(t *testing.T) {
	a := randomSet(4, 300, 1<<20)
	b := randomSet(5, 300, 1<<20)
	if sim := Similarity(DefaultScheme.Sign(a), DefaultScheme.Sign(b)); sim > 0.2 {
		t.Fatalf("disjoint similarity = %v", sim)
	}
}

func TestSimilarityLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched signatures")
		}
	}()
	Similarity(Signature{1}, Signature{1, 2})
}

func TestEmptySetSentinel(t *testing.T) {
	empty := DefaultScheme.Sign(nil)
	real := DefaultScheme.Sign(randomSet(6, 100, 32768))
	if Similarity(empty, real) != 0 {
		t.Fatal("empty-set signature collided with a real one")
	}
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	ix, err := NewIndex[int](DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	var sets []bitset.Sparse
	for i := 0; i < 200; i++ {
		s := randomSet(uint64(100+i), 328, 32768)
		sets = append(sets, s)
		ix.Add(DefaultScheme.Sign(s), i)
	}
	// Query with a 96%-overlap perturbation of set 42 (the trial-noise case).
	q := overlapSet(999, sets[42], 0.96, 32768)
	cands := ix.Candidates(DefaultScheme.Sign(q))
	found := false
	for _, c := range cands {
		if c == 42 {
			found = true
		}
	}
	if !found {
		t.Fatal("near-duplicate page not among candidates")
	}
	if len(cands) > 20 {
		t.Fatalf("%d candidates for one query — banding not selective", len(cands))
	}
}

func TestIndexNoviceQueryReturnsFewCandidates(t *testing.T) {
	ix, err := NewIndex[int](DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ix.Add(DefaultScheme.Sign(randomSet(uint64(1000+i), 328, 32768)), i)
	}
	q := randomSet(77777, 328, 32768) // unrelated page
	if cands := ix.Candidates(DefaultScheme.Sign(q)); len(cands) > 10 {
		t.Fatalf("%d false candidates for an unrelated page", len(cands))
	}
}

func TestIndexCandidatesDeduplicated(t *testing.T) {
	ix, err := NewIndex[string](DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	s := randomSet(8, 300, 32768)
	sig := DefaultScheme.Sign(s)
	ix.Add(sig, "x") // identical signature collides in all 8 bands
	cands := ix.Candidates(sig)
	if len(cands) != 1 || cands[0] != "x" {
		t.Fatalf("candidates = %v, want exactly [x]", cands)
	}
	if ix.Len() != DefaultScheme.Bands {
		t.Fatalf("Len = %d, want %d", ix.Len(), DefaultScheme.Bands)
	}
}

func TestNewIndexRejectsBadScheme(t *testing.T) {
	if _, err := NewIndex[int](Scheme{}); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

// Property: minhash similarity is monotone in true Jaccard similarity on
// average — higher-overlap perturbations score at least as high as
// lower-overlap ones.
func TestQuickSimilarityMonotone(t *testing.T) {
	scheme := Scheme{Bands: 32, Rows: 4, Seed: 17}
	base := randomSet(999, 400, 1<<20)
	prev := -1.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		pert := overlapSet(uint64(frac*1000), base, frac, 1<<20)
		sim := Similarity(scheme.Sign(base), scheme.Sign(pert))
		// Allow small estimator noise between adjacent levels.
		if sim < prev-0.12 {
			t.Fatalf("similarity dropped from %v to %v at overlap %v", prev, sim, frac)
		}
		prev = sim
	}
}

// Property: identical sets always collide in every band.
func TestBandKeysSelfCollision(t *testing.T) {
	s := randomSet(7, 300, 32768)
	a := DefaultScheme.BandKeys(DefaultScheme.Sign(s))
	b := DefaultScheme.BandKeys(DefaultScheme.Sign(s.Clone()))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("band %d keys differ for identical sets", i)
		}
	}
}

// TestProbeKeysOneRowTolerance: the leave-one-out expansion must collide two
// signatures that disagree in exactly one row of a band, and the key spaces
// (full vs probe, different bands, different omitted rows) must not alias.
func TestProbeKeysOneRowTolerance(t *testing.T) {
	scheme := Scheme{Bands: 2, Rows: 4, Seed: 9}
	sig := make(Signature, scheme.Size())
	for i := range sig {
		sig[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	perturbed := append(Signature(nil), sig...)
	perturbed[2] = ^perturbed[2] // band 0, row 2 disagrees

	full := scheme.BandKeys(sig)
	a, b := scheme.ProbeKeys(sig), scheme.ProbeKeys(perturbed)
	if len(a) != scheme.Bands*(1+scheme.Rows) {
		t.Fatalf("probe key count %d, want %d", len(a), scheme.Bands*(1+scheme.Rows))
	}
	// The probe sets must share the leave-one-out key of (band 0, row 2) and
	// every key of the untouched band 1.
	shared := 0
	inA := make(map[uint64]bool, len(a))
	for _, k := range a {
		inA[k] = true
	}
	for _, k := range b {
		if inA[k] {
			shared++
		}
	}
	// band 1 contributes 1 full + 4 probe keys; band 0 contributes exactly
	// its (0, 2) leave-one-out key.
	if shared != 6 {
		t.Fatalf("one-row perturbation shares %d keys, want 6", shared)
	}
	// Full band keys must be a prefix of the probe expansion.
	for b, k := range full {
		if a[b] != k {
			t.Fatalf("band %d: full key not preserved by expansion", b)
		}
	}
	// No aliasing within one signature's expanded key set.
	uniq := make(map[uint64]struct{}, len(a))
	for _, k := range a {
		uniq[k] = struct{}{}
	}
	if len(uniq) != len(a) {
		t.Fatalf("expanded keys alias: %d unique of %d", len(uniq), len(a))
	}
}

// TestMultiProbeIndexRecall: under a deliberately selective scheme (one band
// of many rows), an exact index loses near-duplicates that the multi-probe
// index still surfaces; on clearly different sets both stay quiet.
func TestMultiProbeIndexRecall(t *testing.T) {
	scheme := Scheme{Bands: 2, Rows: 16, Seed: 3}
	exact, err := NewIndex[int](scheme)
	if err != nil {
		t.Fatal(err)
	}
	probed, err := NewMultiProbeIndex[int](scheme)
	if err != nil {
		t.Fatal(err)
	}
	if !probed.MultiProbe() || exact.MultiProbe() {
		t.Fatal("probe mode flags wrong")
	}
	const universe = 1 << 20
	exactMisses, probeHits := 0, 0
	for i := 0; i < 40; i++ {
		s := randomSet(uint64(i)+100, 400, universe)
		sig := scheme.Sign(s)
		exact.Add(sig, i)
		probed.Add(sig, i)
		// A ~97% twin: with 16-row bands a single bad row per band is the
		// common failure, exactly what the leave-one-out probes recover.
		twin := scheme.Sign(overlapSet(uint64(i)+9000, s, 0.97, universe))
		if !hasRef(exact.Candidates(twin), i) {
			exactMisses++
			if hasRef(probed.Candidates(twin), i) {
				probeHits++
			}
		} else if !hasRef(probed.Candidates(twin), i) {
			t.Fatalf("twin %d: exact hit but multi-probe miss", i)
		}
	}
	if exactMisses == 0 {
		t.Skip("selective scheme produced no exact misses at this seed; probe recovery not exercised")
	}
	if probeHits == 0 {
		t.Fatalf("multi-probe recovered 0 of %d exact misses", exactMisses)
	}
	// Different sets must stay non-candidates even with probing.
	foreign := scheme.Sign(randomSet(0xF0E1, 400, universe))
	if got := probed.Candidates(foreign); len(got) > 2 {
		t.Fatalf("foreign set collided with %d entries under multi-probe", len(got))
	}
}

func hasRef(refs []int, want int) bool {
	for _, r := range refs {
		if r == want {
			return true
		}
	}
	return false
}

// TestMultiProbeRejectsSingleRow: Rows=1 would collide everything when the
// single row is omitted, so construction must refuse it.
func TestMultiProbeRejectsSingleRow(t *testing.T) {
	if _, err := NewMultiProbeIndex[int](Scheme{Bands: 8, Rows: 1, Seed: 1}); err == nil {
		t.Fatal("Rows=1 multi-probe index accepted")
	}
}
