// Package minhash implements MinHash signatures and locality-sensitive
// banding over page fingerprints.
//
// The stitching attack (§4) must find, among every page of every cluster in
// the attacker's database, the pages whose fingerprint matches a page of a
// newly captured output. Brute force is quadratic in the fingerprinted
// region and collapses at the 1 GB scale of the end-to-end experiment
// (§7.6). MinHash gives a constant-size signature whose per-coordinate
// collision probability equals the Jaccard similarity of the underlying
// sets; banding turns that into a sub-linear candidate lookup with tunable
// sensitivity. Same-page fingerprints differ only by the ~2 % trial noise
// (similarity ≈ 0.96), while different pages share almost nothing
// (similarity ≈ 0.01), so even aggressive banding separates them cleanly.
package minhash

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

// Scheme fixes the signature and banding parameters. Rows·Bands hash
// functions are evaluated per signature.
type Scheme struct {
	Bands int // number of bands
	Rows  int // rows (hash functions) per band
	Seed  uint64
}

// DefaultScheme is tuned for same-chip page matching: similarity ≈0.96 pages
// collide in at least one band with probability 1−(1−0.96⁴)⁸ ≈ 1−6·10⁻⁶,
// while ≈0.01 pages collide with probability ≈8·10⁻⁸ per pair.
var DefaultScheme = Scheme{Bands: 8, Rows: 4, Seed: 0x313537}

// Validate reports whether the scheme is usable.
func (s Scheme) Validate() error {
	if s.Bands <= 0 || s.Rows <= 0 {
		return fmt.Errorf("minhash: non-positive scheme %+v", s)
	}
	return nil
}

// Size returns the signature length in hash values.
func (s Scheme) Size() int { return s.Bands * s.Rows }

// Signature is the MinHash signature of one set.
type Signature []uint64

// Sign computes the signature of a sparse set. An empty set gets a sentinel
// signature that never collides with a real one.
func (s Scheme) Sign(set bitset.Sparse) Signature {
	sig := make(Signature, s.Size())
	if len(set) == 0 {
		for i := range sig {
			sig[i] = ^uint64(0)
		}
		return sig
	}
	for i := range sig {
		salt := prng.Hash(s.Seed, uint64(i))
		min := ^uint64(0)
		for _, x := range set {
			if h := prng.Mix64(salt ^ uint64(x)); h < min {
				min = h
			}
		}
		sig[i] = min
	}
	return sig
}

// Similarity estimates the Jaccard similarity of the two signed sets as the
// fraction of agreeing signature coordinates. It panics on length mismatch.
func Similarity(a, b Signature) float64 {
	if len(a) != len(b) {
		panic("minhash: signature length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// BandKeys collapses a signature into one key per band. Two sets become
// LSH candidates iff they share at least one band key.
func (s Scheme) BandKeys(sig Signature) []uint64 {
	keys := make([]uint64, s.Bands)
	for b := 0; b < s.Bands; b++ {
		h := uint64(0x9AE16A3B2F90404F)
		for r := 0; r < s.Rows; r++ {
			h = prng.Mix64(h ^ sig[b*s.Rows+r])
		}
		// Fold in the band index so identical rows in different bands do not
		// alias to the same bucket space.
		keys[b] = prng.Hash(h, uint64(b))
	}
	return keys
}

// Index is an LSH index mapping band keys to caller-defined references.
type Index[Ref comparable] struct {
	scheme  Scheme
	buckets map[uint64][]Ref
}

// NewIndex returns an empty index under the scheme.
func NewIndex[Ref comparable](scheme Scheme) (*Index[Ref], error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &Index[Ref]{scheme: scheme, buckets: make(map[uint64][]Ref)}, nil
}

// Scheme returns the index's scheme.
func (ix *Index[Ref]) Scheme() Scheme { return ix.scheme }

// Add registers ref under every band key of the signature.
func (ix *Index[Ref]) Add(sig Signature, ref Ref) {
	for _, k := range ix.scheme.BandKeys(sig) {
		ix.buckets[k] = append(ix.buckets[k], ref)
	}
}

// Candidates returns the deduplicated references colliding with the
// signature in at least one band.
func (ix *Index[Ref]) Candidates(sig Signature) []Ref {
	seen := make(map[Ref]struct{})
	var out []Ref
	for _, k := range ix.scheme.BandKeys(sig) {
		for _, ref := range ix.buckets[k] {
			if _, dup := seen[ref]; dup {
				continue
			}
			seen[ref] = struct{}{}
			out = append(out, ref)
		}
	}
	return out
}

// Len returns the total number of (band, ref) entries held.
func (ix *Index[Ref]) Len() int {
	n := 0
	for _, refs := range ix.buckets {
		n += len(refs)
	}
	return n
}
