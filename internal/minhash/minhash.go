// Package minhash implements MinHash signatures and locality-sensitive
// banding over page fingerprints.
//
// The stitching attack (§4) must find, among every page of every cluster in
// the attacker's database, the pages whose fingerprint matches a page of a
// newly captured output. Brute force is quadratic in the fingerprinted
// region and collapses at the 1 GB scale of the end-to-end experiment
// (§7.6). MinHash gives a constant-size signature whose per-coordinate
// collision probability equals the Jaccard similarity of the underlying
// sets; banding turns that into a sub-linear candidate lookup with tunable
// sensitivity. Same-page fingerprints differ only by the ~2 % trial noise
// (similarity ≈ 0.96), while different pages share almost nothing
// (similarity ≈ 0.01), so even aggressive banding separates them cleanly.
package minhash

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

// Scheme fixes the signature and banding parameters. Rows·Bands hash
// functions are evaluated per signature.
type Scheme struct {
	Bands int // number of bands
	Rows  int // rows (hash functions) per band
	Seed  uint64
}

// DefaultScheme is tuned for same-chip page matching: similarity ≈0.96 pages
// collide in at least one band with probability 1−(1−0.96⁴)⁸ ≈ 1−6·10⁻⁶,
// while ≈0.01 pages collide with probability ≈8·10⁻⁸ per pair.
var DefaultScheme = Scheme{Bands: 8, Rows: 4, Seed: 0x313537}

// Validate reports whether the scheme is usable.
func (s Scheme) Validate() error {
	if s.Bands <= 0 || s.Rows <= 0 {
		return fmt.Errorf("minhash: non-positive scheme %+v", s)
	}
	return nil
}

// Size returns the signature length in hash values.
func (s Scheme) Size() int { return s.Bands * s.Rows }

// Signature is the MinHash signature of one set.
type Signature []uint64

// Sign computes the signature of a sparse set. An empty set gets a sentinel
// signature that never collides with a real one.
func (s Scheme) Sign(set bitset.Sparse) Signature {
	sig := make(Signature, s.Size())
	if len(set) == 0 {
		for i := range sig {
			sig[i] = ^uint64(0)
		}
		return sig
	}
	for i := range sig {
		salt := prng.Hash(s.Seed, uint64(i))
		min := ^uint64(0)
		for _, x := range set {
			if h := prng.Mix64(salt ^ uint64(x)); h < min {
				min = h
			}
		}
		sig[i] = min
	}
	return sig
}

// Similarity estimates the Jaccard similarity of the two signed sets as the
// fraction of agreeing signature coordinates. It panics on length mismatch.
func Similarity(a, b Signature) float64 {
	if len(a) != len(b) {
		panic("minhash: signature length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// BandKeys collapses a signature into one key per band. Two sets become
// LSH candidates iff they share at least one band key.
func (s Scheme) BandKeys(sig Signature) []uint64 {
	keys := make([]uint64, s.Bands)
	for b := 0; b < s.Bands; b++ {
		h := uint64(0x9AE16A3B2F90404F)
		for r := 0; r < s.Rows; r++ {
			h = prng.Mix64(h ^ sig[b*s.Rows+r])
		}
		// Fold in the band index so identical rows in different bands do not
		// alias to the same bucket space.
		keys[b] = prng.Hash(h, uint64(b))
	}
	return keys
}

// ProbeKeys returns the multi-probe key set of a signature: the Bands full
// band keys followed by the Bands·Rows leave-one-out keys — for each band,
// the keys obtained by omitting one row from the band hash. Two signatures
// share a leave-one-out key (b, r) exactly when they agree on every row of
// band b except possibly row r, so indexing and probing with this expanded
// set tolerates one disagreeing row per band: the near-miss buckets that
// keep recall up as bands grow more selective. The expansion requires
// Rows ≥ 2 (with one row, omitting it would collide everything).
func (s Scheme) ProbeKeys(sig Signature) []uint64 {
	keys := make([]uint64, 0, s.Bands*(1+s.Rows))
	keys = append(keys, s.BandKeys(sig)...)
	for b := 0; b < s.Bands; b++ {
		for r := 0; r < s.Rows; r++ {
			h := uint64(0x6C62272E07BB0142)
			for rr := 0; rr < s.Rows; rr++ {
				if rr == r {
					continue
				}
				h = prng.Mix64(h ^ sig[b*s.Rows+rr])
			}
			// Salt with the band AND the omitted row so probe keys neither
			// alias each other nor the full-key space.
			keys = append(keys, prng.Hash(h, uint64(b), uint64(r)+1))
		}
	}
	return keys
}

// Index is an LSH index mapping band keys to caller-defined references.
// When constructed with NewMultiProbeIndex it indexes and probes the
// leave-one-out key expansion as well, trading index size (×(1+Rows)) for
// recall on signatures that disagree in a single row per band.
type Index[Ref comparable] struct {
	scheme  Scheme
	probes  bool
	buckets map[uint64][]Ref
}

// NewIndex returns an empty index under the scheme.
func NewIndex[Ref comparable](scheme Scheme) (*Index[Ref], error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &Index[Ref]{scheme: scheme, buckets: make(map[uint64][]Ref)}, nil
}

// NewMultiProbeIndex returns an empty index that registers and probes the
// leave-one-out key expansion in addition to the full band keys. It requires
// Rows ≥ 2.
func NewMultiProbeIndex[Ref comparable](scheme Scheme) (*Index[Ref], error) {
	ix, err := NewIndex[Ref](scheme)
	if err != nil {
		return nil, err
	}
	if scheme.Rows < 2 {
		return nil, fmt.Errorf("minhash: multi-probe needs Rows >= 2, have %d", scheme.Rows)
	}
	ix.probes = true
	return ix, nil
}

// Scheme returns the index's scheme.
func (ix *Index[Ref]) Scheme() Scheme { return ix.scheme }

// MultiProbe reports whether the index carries the leave-one-out expansion.
func (ix *Index[Ref]) MultiProbe() bool { return ix.probes }

// keys returns the bucket keys of a signature under the index's probing mode.
func (ix *Index[Ref]) keys(sig Signature) []uint64 {
	if ix.probes {
		return ix.scheme.ProbeKeys(sig)
	}
	return ix.scheme.BandKeys(sig)
}

// Add registers ref under every band key of the signature (and, on a
// multi-probe index, under every leave-one-out key).
func (ix *Index[Ref]) Add(sig Signature, ref Ref) {
	for _, k := range ix.keys(sig) {
		ix.buckets[k] = append(ix.buckets[k], ref)
	}
}

// Candidates returns the deduplicated references colliding with the
// signature in at least one band (or, on a multi-probe index, in at least
// one probe bucket). The merged probe results are deduplicated here, once,
// before any verification work downstream.
func (ix *Index[Ref]) Candidates(sig Signature) []Ref {
	seen := make(map[Ref]struct{})
	var out []Ref
	for _, k := range ix.keys(sig) {
		for _, ref := range ix.buckets[k] {
			if _, dup := seen[ref]; dup {
				continue
			}
			seen[ref] = struct{}{}
			out = append(out, ref)
		}
	}
	return out
}

// Len returns the total number of (band, ref) entries held.
func (ix *Index[Ref]) Len() int {
	n := 0
	for _, refs := range ix.buckets {
		n += len(refs)
	}
	return n
}
