// PR9 benches: the tiered segment store against the in-memory backend on a
// 100k-entry corpus, same sliced+probes configuration and the half-hit/
// half-miss query mix of the PR-8 benches. Two properties are on the line:
// identify latency off the mmap'd segments must stay interactive (p99 within
// 3× of the all-heap backend), and the tiered engine's resident heap must
// stay a small fraction of the corpus (< 25%), because flushed fingerprints
// live in the page cache, not the heap. TestBenchPR9Smoke (BENCH_SMOKE=1)
// guards both against the baseline recorded in BENCH_PR9.json.
package probablecause_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
	"probablecause/internal/store"
)

const (
	pr9Entries = 100_000
	pr9Bits    = 4096
	pr9Seed    = 0x9999
)

func pr9FP(card int, seed uint64) *bitset.Set {
	s := bitset.New(pr9Bits)
	for k := 0; s.Count() < card; k++ {
		s.Set(int(prng.Hash(seed, uint64(k)) % uint64(pr9Bits)))
	}
	return s
}

// pr9Fixture holds both backends over the identical Add sequence, the query
// mix, and the tiered build's heap high-water fraction.
type pr9Fixture struct {
	memory   store.Backend
	tiered   store.Backend
	queries  []*bitset.Set
	wantIdx  []int // expected identify index; -1 for a miss
	heapFrac float64
}

var (
	pr9Once sync.Once
	pr9Fix  *pr9Fixture
	pr9Err  error
)

func pr9Backends(b testing.TB) *pr9Fixture {
	b.Helper()
	pr9Once.Do(func() {
		f := &pr9Fixture{}
		dbCfg := store.DBConfig{
			Threshold: fingerprint.DefaultThreshold,
			Sliced:    true, Probes: true, Workers: 4,
		}
		dir, err := os.MkdirTemp("", "bench-pr9")
		if err != nil {
			pr9Err = err
			return
		}
		// Tiered first, bracketed by heap readings: the delta over the
		// build is the engine's resident cost for the flushed corpus.
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		tiered, err := store.Open(store.Config{
			Backend: store.BackendTiered, Dir: dir,
			FlushEntries: 1 << 14, CompactSegments: 8,
		}, dbCfg)
		if err != nil {
			pr9Err = err
			return
		}
		d := tiered.(store.DurableBackend)
		var watermark uint64
		for i := 0; i < pr9Entries; i++ {
			card := 40 + int(prng.Hash(pr9Seed, uint64(i))%41)
			tiered.Add(fmt.Sprintf("dev%06d", i), pr9FP(card, pr9Seed^uint64(i)))
			watermark++
			if d.NeedsFlush() {
				if pr9Err = d.Checkpoint(watermark); pr9Err != nil {
					return
				}
			}
		}
		if pr9Err = d.Checkpoint(watermark); pr9Err != nil {
			return
		}
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		corpusBytes := float64(pr9Entries) * float64(pr9Bits) / 8
		if m1.HeapAlloc > m0.HeapAlloc {
			f.heapFrac = float64(m1.HeapAlloc-m0.HeapAlloc) / corpusBytes
		}

		memory, err := store.Open(store.Config{}, dbCfg)
		if err != nil {
			pr9Err = err
			return
		}
		for i := 0; i < pr9Entries; i++ {
			card := 40 + int(prng.Hash(pr9Seed, uint64(i))%41)
			memory.Add(fmt.Sprintf("dev%06d", i), pr9FP(card, pr9Seed^uint64(i)))
		}
		f.memory, f.tiered = memory, tiered

		const each = 8
		for k := 0; k < each; k++ {
			i := (k + 1) * (pr9Entries / (each + 1))
			card := 40 + int(prng.Hash(pr9Seed, uint64(i))%41)
			q := pr9FP(card, pr9Seed^uint64(i))
			pos := q.Positions()
			q.Clear(int(pos[prng.Hash(pr9Seed, 0x41, uint64(k))%uint64(len(pos))]))
			f.queries = append(f.queries, q)
			f.wantIdx = append(f.wantIdx, i)
		}
		for k := 0; k < each; k++ {
			f.queries = append(f.queries, pr9FP(40, 0xA15500^prng.Hash(pr9Seed, uint64(k))))
			f.wantIdx = append(f.wantIdx, -1)
		}
		pr9Fix = f
	})
	if pr9Err != nil {
		b.Fatal(pr9Err)
	}
	return pr9Fix
}

func benchStoreIdentify(b *testing.B, backend store.Backend) {
	f := pr9Backends(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(f.queries)
		_, idx, ok := backend.Identify(f.queries[q])
		if want := f.wantIdx[q]; (want >= 0) != ok || (ok && idx != want) {
			b.Fatalf("query %d identified as %d (ok=%v), want %d", q, idx, ok, want)
		}
	}
}

// BenchmarkStoreIdentify100k compares identify latency on the two storage
// backends over identical corpora and queries; every op verifies its
// verdict, so speed cannot drift from the scan-equivalence contract.
func BenchmarkStoreIdentify100k(b *testing.B) {
	b.Run("memory-100k", func(b *testing.B) { benchStoreIdentify(b, pr9Backends(b).memory) })
	b.Run("tiered-100k", func(b *testing.B) { benchStoreIdentify(b, pr9Backends(b).tiered) })
}

// storeP99 measures per-query identify latency over rounds sweeps of the
// query mix and returns the 99th percentile.
func storeP99(f *pr9Fixture, backend store.Backend, rounds int) time.Duration {
	lat := make([]time.Duration, 0, rounds*len(f.queries))
	for r := 0; r < rounds; r++ {
		for _, q := range f.queries {
			t0 := time.Now()
			backend.Identify(q)
			lat = append(lat, time.Since(t0))
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	i := int(0.99 * float64(len(lat)))
	if i >= len(lat) {
		i = len(lat) - 1
	}
	return lat[i]
}

// benchPR9Baseline mirrors BENCH_PR9.json.
type benchPR9Baseline struct {
	// TieredIdentifyP99Ratio is tiered p99 ÷ memory p99 on the 100k corpus.
	TieredIdentifyP99Ratio float64 `json:"tiered_identify_p99_ratio"`
	// TieredHeapFrac is the tiered build's resident-heap high-water as a
	// fraction of the raw fingerprint corpus bytes.
	TieredHeapFrac float64 `json:"tiered_heap_frac"`
}

// TestBenchPR9Smoke guards the PR-9 acceptance pair: tiered identify p99
// within 3× of the in-memory backend (hard ceiling, with headroom over the
// recorded baseline), and tiered resident heap below 25% of the corpus.
// Gated by BENCH_SMOKE=1 like the other bench smokes.
func TestBenchPR9Smoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") != "1" {
		t.Skip("set BENCH_SMOKE=1 to run the bench regression smoke")
	}
	data, err := os.ReadFile("BENCH_PR9.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchPR9Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	f := pr9Backends(t)
	// Warm both paths once so neither p99 carries cold page faults.
	for _, q := range f.queries {
		f.memory.Identify(q)
		f.tiered.Identify(q)
	}
	memP99 := storeP99(f, f.memory, 30)
	tierP99 := storeP99(f, f.tiered, 30)
	ratio := float64(tierP99) / float64(memP99)
	t.Logf("identify p99: memory %v, tiered %v → ratio %.2fx (baseline %.2fx); tiered heap %.1f%% of corpus (baseline %.1f%%)",
		memP99, tierP99, ratio, base.TieredIdentifyP99Ratio, 100*f.heapFrac, 100*base.TieredHeapFrac)
	ceiling := 2 * base.TieredIdentifyP99Ratio
	if ceiling > 3 {
		ceiling = 3 // the PR-9 acceptance ceiling is absolute
	}
	if ratio > ceiling {
		t.Errorf("tiered identify p99 is %.2fx the in-memory backend (ceiling %.2fx, hard ceiling 3x)", ratio, ceiling)
	}
	if f.heapFrac >= 0.25 {
		t.Errorf("tiered resident heap is %.1f%% of the corpus (hard ceiling 25%%)", 100*f.heapFrac)
	}
}
