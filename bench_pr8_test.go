// PR8 benches: the bit-sliced identification engine against the LSH-indexed
// path on a 100k-entry synthetic corpus. The query mix is half hits, half
// misses — misses are where the paths diverge, because an indexed miss falls
// back to the scalar full scan while a sliced miss runs the pruned band-major
// block sweep. The companion TestBenchPR8Smoke (gated by BENCH_SMOKE=1)
// guards the machine-independent indexed→sliced ratio recorded in
// BENCH_PR8.json, with a hard ≥10× floor from the PR-8 acceptance criteria.
package probablecause_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

const (
	pr8Entries = 100_000
	pr8Bits    = 4096
	pr8Seed    = 0x8888
)

// pr8FP builds one ~card-bit synthetic fingerprint; direct pseudo-random
// generation is what lets the fixture reach 100k entries in milliseconds
// where the drammodel would take minutes.
func pr8FP(card int, seed uint64) *bitset.Set {
	s := bitset.New(pr8Bits)
	for k := 0; s.Count() < card; k++ {
		s.Set(int(prng.Hash(seed, uint64(k)) % uint64(pr8Bits)))
	}
	return s
}

// pr8Fixture is the shared 100k-entry corpus: the plain scan DB, the indexed
// view, the sliced view, and a hit/miss query mix.
type pr8Fixture struct {
	db      *fingerprint.DB
	indexed *fingerprint.IndexedDB
	sliced  *fingerprint.SlicedDB
	queries []*bitset.Set
	wantIdx []int // expected identify index; -1 for a miss
}

var (
	pr8Once sync.Once
	pr8Fix  *pr8Fixture
	pr8Err  error
)

func pr8DB(b testing.TB) *pr8Fixture {
	b.Helper()
	pr8Once.Do(func() {
		f := &pr8Fixture{db: fingerprint.NewDB(fingerprint.DefaultThreshold)}
		for i := 0; i < pr8Entries; i++ {
			card := 40 + int(prng.Hash(pr8Seed, uint64(i))%41)
			f.db.Add(fmt.Sprintf("dev%06d", i), pr8FP(card, pr8Seed^uint64(i)))
		}
		icfg := fingerprint.IndexedConfig{Workers: 4}
		if f.indexed, pr8Err = fingerprint.IndexDB(f.db, icfg); pr8Err != nil {
			return
		}
		if f.sliced, pr8Err = fingerprint.SliceDB(f.db, fingerprint.SlicedConfig{Index: icfg}); pr8Err != nil {
			return
		}
		// Hits: perturbed copies of entries spread through the database (one
		// volatile bit dropped, the trial-flicker shape). Misses: fresh
		// random sets, which drive both paths through their fallback scans.
		const each = 8
		for k := 0; k < each; k++ {
			i := (k + 1) * (pr8Entries / (each + 1))
			q := f.db.Entries()[i].FP.Clone()
			pos := q.Positions()
			q.Clear(int(pos[prng.Hash(pr8Seed, 0x41, uint64(k))%uint64(len(pos))]))
			f.queries = append(f.queries, q)
			f.wantIdx = append(f.wantIdx, i)
		}
		for k := 0; k < each; k++ {
			f.queries = append(f.queries, pr8FP(40, 0xA15500^prng.Hash(pr8Seed, uint64(k))))
			f.wantIdx = append(f.wantIdx, -1)
		}
		pr8Fix = f
	})
	if pr8Err != nil {
		b.Fatal(pr8Err)
	}
	return pr8Fix
}

func benchIdentify100k(b *testing.B, ident fingerprint.Identifier) {
	f := pr8DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(f.queries)
		_, idx, ok := ident.Identify(f.queries[q])
		if want := f.wantIdx[q]; (want >= 0) != ok || (ok && idx != want) {
			b.Fatalf("query %d identified as %d (ok=%v), want %d", q, idx, ok, want)
		}
	}
}

// BenchmarkIdentify100k compares the three identification paths on the same
// 100k corpus and query mix. Every op verifies the verdict, so the speed
// comparison cannot drift from the correctness contract.
func BenchmarkIdentify100k(b *testing.B) {
	b.Run("scan-100k", func(b *testing.B) { benchIdentify100k(b, pr8DB(b).db) })
	b.Run("indexed-100k", func(b *testing.B) { benchIdentify100k(b, pr8DB(b).indexed) })
	b.Run("sliced-100k", func(b *testing.B) { benchIdentify100k(b, pr8DB(b).sliced) })
}

// benchPR8Baseline mirrors BENCH_PR8.json.
type benchPR8Baseline struct {
	// IdentifySlicedSpeedup is indexed ns/op ÷ sliced ns/op on the 100k
	// corpus with the half-hit/half-miss query mix.
	IdentifySlicedSpeedup float64 `json:"identify_sliced_speedup"`
}

// TestBenchPR8Smoke guards the indexed→sliced ratio: it must stay within 2×
// of the recorded baseline AND above the hard 10× floor the PR-8 acceptance
// criteria demand. Gated by BENCH_SMOKE=1 like TestBenchSmoke.
func TestBenchPR8Smoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") != "1" {
		t.Skip("set BENCH_SMOKE=1 to run the bench regression smoke")
	}
	data, err := os.ReadFile("BENCH_PR8.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchPR8Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}

	indexed := testing.Benchmark(func(b *testing.B) { benchIdentify100k(b, pr8DB(b).indexed) })
	sliced := testing.Benchmark(func(b *testing.B) { benchIdentify100k(b, pr8DB(b).sliced) })
	speedup := float64(indexed.NsPerOp()) / float64(sliced.NsPerOp())
	t.Logf("identify-100k: indexed %v, sliced %v → speedup %.1fx (baseline %.1fx)",
		indexed.NsPerOp(), sliced.NsPerOp(), speedup, base.IdentifySlicedSpeedup)
	floor := base.IdentifySlicedSpeedup / 2
	if floor < 10 {
		floor = 10
	}
	if speedup < floor {
		t.Errorf("sliced identify speedup %.2fx below floor %.2fx (baseline %.2fx, hard floor 10x)",
			speedup, floor, base.IdentifySlicedSpeedup)
	}
}
