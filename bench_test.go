// Benchmarks: one per table and figure of the paper's evaluation, plus the
// ablations called out in DESIGN.md §5 and micro-benchmarks of the hot
// primitives. Experiment benches run at test scale so `go test -bench=.`
// finishes in minutes; `cmd/pcexperiments` runs the paper-scale versions.
package probablecause_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/experiment"
	"probablecause/internal/fingerprint"
	"probablecause/internal/minhash"
	"probablecause/internal/obs"
	"probablecause/internal/osmodel"
	"probablecause/internal/prng"
	"probablecause/internal/puf"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

// TestMain is the -obs.report plumbing for the bench suite: set OBS_REPORT
// to a file name to run the whole suite with instrumentation enabled and
// dump the metrics snapshot at exit. BENCH_*.json perf-trajectory files are
// produced with
//
//	OBS_REPORT=BENCH_PRn.json go test -run=NONE -bench=. -benchtime=1x .
//
// Leave OBS_REPORT unset for timing runs: enabling obs adds the
// instrumented (timed) path to the hot primitives being measured.
func TestMain(m *testing.M) {
	report := os.Getenv("OBS_REPORT")
	if report != "" {
		obs.Enable()
	}
	code := m.Run()
	if report != "" {
		if err := obs.WriteReportFile(report); err != nil {
			fmt.Fprintln(os.Stderr, "writing OBS_REPORT:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// --- per-figure / per-table benches -----------------------------------------

func BenchmarkFig5ErrorImages(b *testing.B) {
	p := experiment.SmallFig5Params()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig5(p)
		if err != nil {
			b.Fatal(err)
		}
		if r.DistA1B < 0.5 {
			b.Fatal("cross-chip distance collapsed")
		}
	}
}

var (
	benchCorpusOnce sync.Once
	benchCorpus     *experiment.Corpus
	benchCorpusErr  error
)

func corpusForBench(b *testing.B) *experiment.Corpus {
	b.Helper()
	benchCorpusOnce.Do(func() {
		benchCorpus, benchCorpusErr = experiment.BuildCorpus(experiment.SmallCorpusParams())
	})
	if benchCorpusErr != nil {
		b.Fatal(benchCorpusErr)
	}
	return benchCorpus
}

func BenchmarkFig7Uniqueness(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig7(c, 1)
		if r.IdentifyCorrect != r.IdentifyTotal {
			b.Fatalf("identification %d/%d", r.IdentifyCorrect, r.IdentifyTotal)
		}
		b.ReportMetric(r.Separation, "separation")
	}
}

func BenchmarkFig8Consistency(b *testing.B) {
	p := experiment.SmallFig8Params()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig8(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Repeatability, "repeatability")
	}
}

func BenchmarkFig9Thermal(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig9(c, 1)
		b.ReportMetric(r.MeanSpread, "mean-spread")
	}
}

func BenchmarkFig10FailureOrder(b *testing.B) {
	p := experiment.SmallFig10Params()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig10(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SubsetFraction[0], "subset-fraction")
	}
}

func BenchmarkFig11AccuracyPrivacy(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig11(c, 1)
		b.ReportMetric(r.MinBetween, "min-between")
	}
}

func BenchmarkFig13Stitching(b *testing.B) {
	p := experiment.SmallFig13Params()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig13(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Peak), "peak-clusters")
		b.ReportMetric(float64(r.Final), "final-clusters")
	}
}

func BenchmarkTable1FingerprintSpace(b *testing.B) {
	p := experiment.DefaultTable1Params()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable1(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2MismatchChance(b *testing.B) {
	p := experiment.DefaultTable2Params()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDDR2Skew(b *testing.B) {
	p := experiment.SmallDDR2Params()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunDDR2(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BowleySkew, "bowley-skew")
	}
}

func BenchmarkDefenses(b *testing.B) {
	p := experiment.SmallDefensesParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunDefenses(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ---------------------------------------------------------------

func BenchmarkAblationHammingVsJaccard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunAblationHamming(6, 32768, 0xAB1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.JaccardBetweenMin-r.JaccardWithinMax, "jaccard-margin")
		b.ReportMetric(r.HammingBetweenMin-r.HammingWithinMax, "hamming-margin")
	}
}

func BenchmarkAblationIntersectVsUnion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunAblationIntersect(21, 32768, 0xAB2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.NoiseBitsIntersect), "noise-intersect")
		b.ReportMetric(float64(r.NoiseBitsUnion), "noise-union")
	}
}

func benchStitch(b *testing.B, brute bool) {
	const memoryPages, samplePages, samples = 512, 8, 120
	for i := 0; i < b.N; i++ {
		model := drammodel.New(0xB17E)
		mem, err := osmodel.NewMemory(memoryPages, 0x9)
		if err != nil {
			b.Fatal(err)
		}
		src, err := workload.NewSampleSource(model, mem, 0.01, samplePages)
		if err != nil {
			b.Fatal(err)
		}
		st, err := stitch.New(stitch.Config{Brute: brute})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < samples; s++ {
			sample, _, err := src.Next()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Add(sample); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationLSHVsBrute(b *testing.B) {
	b.Run("lsh", func(b *testing.B) { benchStitch(b, false) })
	b.Run("brute", func(b *testing.B) { benchStitch(b, true) })
}

func BenchmarkAblationSparseVsDense(b *testing.B) {
	m := drammodel.New(0x5D)
	s1, err := m.PageErrors(0, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	s2, err := m.PageErrors(0, 0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	d1, d2 := s1.Dense(dram.PageBits), s2.Dense(dram.PageBits)
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if fingerprint.SparseDistance(s1, s2) > 0.5 {
				b.Fatal("same-page distance collapsed")
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if fingerprint.Distance(d1, d2) > 0.5 {
				b.Fatal("same-page distance collapsed")
			}
		}
	})
}

// --- micro-benchmarks of the hot primitives ----------------------------------

func BenchmarkDistance32KPage(b *testing.B) {
	rng := prng.New(1)
	mk := func() *bitset.Set {
		s := bitset.New(dram.PageBits)
		for i := 0; i < 328; i++ {
			s.Set(rng.Intn(dram.PageBits))
		}
		return s
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fingerprint.Distance(x, y)
	}
}

func BenchmarkCharacterize(b *testing.B) {
	rng := prng.New(2)
	exact := make([]byte, dram.PageBytes)
	outs := make([][]byte, 3)
	for i := range outs {
		out := make([]byte, dram.PageBytes)
		rng.Fill(out)
		outs[i] = out
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fingerprint.Characterize(exact, outs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinhashSign(b *testing.B) {
	m := drammodel.New(0x51)
	fp, err := m.PageErrors(0, 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minhash.DefaultScheme.Sign(fp)
	}
}

func BenchmarkChipRoundtrip(b *testing.B) {
	cfg := dram.KM41464A(0xBEEF)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := chip.WorstCaseData()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chip.Write(0, data); err != nil {
			b.Fatal(err)
		}
		chip.Elapse(5)
		if _, err := chip.Read(0, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPageErrors(b *testing.B) {
	m := drammodel.New(0x7777)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PageErrors(uint64(i), 0.01, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErrLocalization(b *testing.B) {
	p := experiment.SmallErrLocParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunErrLoc(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MedianRecall, "median-recall")
	}
}

// --- extension benches ---------------------------------------------------

func BenchmarkExtensionCrossMechanism(b *testing.B) {
	p := experiment.SmallCrossMechParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunCrossMechanism(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.VoltOnRefreshFP)/float64(r.Total), "volt-on-refresh-acc")
	}
}

func BenchmarkExtensionScrambling(b *testing.B) {
	p := experiment.SmallScrambleParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunScrambling(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ScrambledIdentified), "scrambled-identified")
	}
}

func BenchmarkExtensionRefreshSchemes(b *testing.B) {
	p := experiment.DefaultRefreshSchemesParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunRefreshSchemes(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RowAwareOverlap, "rowaware-overlap")
	}
}

func BenchmarkPUFEnrollAuthenticate(b *testing.B) {
	cfg := dram.KM41464A(0x9F)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mem, err := approx.New(chip, 0.97)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := puf.Enroll(mem, puf.Region{Addr: 0, Len: 4096}, 3)
		if err != nil {
			b.Fatal(err)
		}
		ok, _, err := e.Authenticate(mem)
		if err != nil || !ok {
			b.Fatalf("authentication failed: %v", err)
		}
	}
}

func BenchmarkEnergyPrivacy(b *testing.B) {
	p := experiment.SmallEnergyParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunEnergyPrivacy(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].EnergyRatio, "energy-ratio-90pct")
	}
}

func BenchmarkModelCheck(b *testing.B) {
	p := experiment.DefaultModelCheckParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunModelCheck(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThresholdSweep(b *testing.B) {
	c := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunThresholdSweep(c, experiment.DefaultThresholdSweep(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PlateauHi-r.PlateauLo, "plateau-width")
	}
}

func BenchmarkCollisionMonteCarlo(b *testing.B) {
	p := experiment.SmallCollisionParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunCollisions(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Collisions), "collisions")
	}
}

func BenchmarkStitchPersistence(b *testing.B) {
	m := drammodel.New(0x5A7E)
	mem, err := osmodel.NewMemory(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	src, err := workload.NewSampleSource(m, mem, 0.01, 8)
	if err != nil {
		b.Fatal(err)
	}
	st, err := stitch.New(stitch.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s, _, err := src.Next()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := stitch.Load(&buf, stitch.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECCDefense(b *testing.B) {
	p := experiment.SmallECCParams()
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunECCDefense(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Identified)/float64(r.Total), "identified-through-ecc")
	}
}
