module probablecause

go 1.22
