// PR3 benches: the LSH-indexed identification path against the dense scan on
// a 1000-entry database, and stitch ingestion under the worker pool. The
// companion TestBenchSmoke (gated by BENCH_SMOKE=1) guards the machine-
// independent ratios recorded in BENCH_BASELINE.json, so CI catches an
// algorithmic regression without depending on runner speed.
package probablecause_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
	"probablecause/internal/osmodel"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

// identifyFixture is a 1000-chip fingerprint database plus fresh outputs to
// identify, shared across the identify benches (building it dominates any
// single bench run).
type identifyFixture struct {
	db      *fingerprint.DB
	indexed *fingerprint.IndexedDB
	queries []*bitset.Set
	chips   []int
}

var (
	identFixtureOnce sync.Once
	identFixture     *identifyFixture
	identFixtureErr  error
)

func identifyDB(b *testing.B) *identifyFixture {
	b.Helper()
	identFixtureOnce.Do(func() {
		const chips, queries = 1000, 16
		f := &identifyFixture{db: fingerprint.NewDB(fingerprint.DefaultThreshold)}
		for i := 0; i < chips; i++ {
			m := drammodel.New(0x1DDB + uint64(i)*0x9E37)
			vs, err := m.VolatileSet(uint64(i), 0.01)
			if err != nil {
				identFixtureErr = err
				return
			}
			f.db.Add(fmt.Sprintf("chip%04d", i), vs.Dense(dram.PageBits))
			// Query chips spread evenly through the database, so the scan
			// pays its true average cost instead of early-exiting on the
			// first entries.
			if i%(chips/queries) == chips/queries-1 {
				out, err := m.PageErrors(uint64(i), 0.01, 7)
				if err != nil {
					identFixtureErr = err
					return
				}
				f.queries = append(f.queries, out.Dense(dram.PageBits))
				f.chips = append(f.chips, i)
			}
		}
		f.indexed, identFixtureErr = fingerprint.IndexDB(f.db, fingerprint.IndexedConfig{})
		identFixture = f
	})
	if identFixtureErr != nil {
		b.Fatal(identFixtureErr)
	}
	return identFixture
}

func benchIdentify(b *testing.B, ident fingerprint.Identifier) {
	f := identifyDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % len(f.queries)
		_, idx, ok := ident.Identify(f.queries[q])
		if !ok || idx != f.chips[q] {
			b.Fatalf("query %d identified as %d (ok=%v), want %d", q, idx, ok, f.chips[q])
		}
	}
}

// BenchmarkIdentify compares Algorithm 2 as a dense scan over all 1000
// entries with the LSH-indexed candidate lookup. Both return identical
// matches (enforced per query); the indexed path checks only the bucket
// collisions.
func BenchmarkIdentify(b *testing.B) {
	b.Run("scan-1k", func(b *testing.B) { benchIdentify(b, identifyDB(b).db) })
	b.Run("indexed-1k", func(b *testing.B) { benchIdentify(b, identifyDB(b).indexed) })
}

// BenchmarkParallelIdentify measures the batch API fanning the query set
// across the pool (collapses to the serial loop on a 1-CPU runner).
func BenchmarkParallelIdentify(b *testing.B) {
	f := identifyDB(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matches := f.indexed.ParallelIdentify(f.queries, workers)
				for q, m := range matches {
					if !m.OK || m.Index != f.chips[q] {
						b.Fatalf("query %d → %+v, want chip %d", q, m, f.chips[q])
					}
				}
			}
		})
	}
}

func benchStitchAdd(b *testing.B, workers int) {
	const memoryPages, samplePages, samples = 512, 8, 120
	for i := 0; i < b.N; i++ {
		model := drammodel.New(0xB17E)
		mem, err := osmodel.NewMemory(memoryPages, 0x9)
		if err != nil {
			b.Fatal(err)
		}
		src, err := workload.NewSampleSource(model, mem, 0.01, samplePages)
		if err != nil {
			b.Fatal(err)
		}
		st, err := stitch.New(stitch.Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < samples; s++ {
			sample, _, err := src.Next()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Add(sample); err != nil {
				b.Fatal(err)
			}
		}
		if st.Count() == 0 {
			b.Fatal("stitching produced no clusters")
		}
	}
}

// BenchmarkStitchAdd measures full-stream ingestion. Every page is now
// signed exactly once (lookup and index insertion share the signature);
// extra workers add wall-clock wins only on multi-core runners, never
// changing the produced clusters.
func BenchmarkStitchAdd(b *testing.B) {
	b.Run("workers-1", func(b *testing.B) { benchStitchAdd(b, 1) })
	b.Run("workers-4", func(b *testing.B) { benchStitchAdd(b, 4) })
}

// benchBaseline mirrors BENCH_BASELINE.json: machine-independent ratios the
// smoke test guards with 2× slack.
type benchBaseline struct {
	// IdentifyIndexedSpeedup is scan ns/op ÷ indexed ns/op on the 1k DB.
	IdentifyIndexedSpeedup float64 `json:"identify_indexed_speedup"`
	// StitchAddPerDistance is stitch ingestion ns per sample ÷ the ns of one
	// dense 32K-page Distance — a calibration that cancels CPU speed.
	StitchAddPerDistance float64 `json:"stitch_add_per_distance"`
}

// TestBenchSmoke fails when either guarded ratio regresses by more than 2×
// against BENCH_BASELINE.json. Gated by BENCH_SMOKE=1: the run costs a few
// benchmark seconds and only CI's perf job should pay it.
func TestBenchSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") != "1" {
		t.Skip("set BENCH_SMOKE=1 to run the bench regression smoke")
	}
	data, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}

	scan := testing.Benchmark(func(b *testing.B) { benchIdentify(b, identifyDB(b).db) })
	indexed := testing.Benchmark(func(b *testing.B) { benchIdentify(b, identifyDB(b).indexed) })
	speedup := float64(scan.NsPerOp()) / float64(indexed.NsPerOp())
	t.Logf("identify: scan %v, indexed %v → speedup %.1fx (baseline %.1fx)",
		scan.NsPerOp(), indexed.NsPerOp(), speedup, base.IdentifyIndexedSpeedup)
	if speedup < base.IdentifyIndexedSpeedup/2 {
		t.Errorf("indexed identify speedup %.2fx regressed >2x vs baseline %.2fx",
			speedup, base.IdentifyIndexedSpeedup)
	}

	dist := testing.Benchmark(BenchmarkDistance32KPage)
	add := testing.Benchmark(func(b *testing.B) { benchStitchAdd(b, 1) })
	perSample := float64(add.NsPerOp()) / 120 // samples per ingestion run
	ratio := perSample / float64(dist.NsPerOp())
	t.Logf("stitch: %.0f ns/sample ÷ %v ns/distance → ratio %.0f (baseline %.0f)",
		perSample, dist.NsPerOp(), ratio, base.StitchAddPerDistance)
	if ratio > base.StitchAddPerDistance*2 {
		t.Errorf("stitch ingestion cost ratio %.0f regressed >2x vs baseline %.0f",
			ratio, base.StitchAddPerDistance)
	}
}
