package probablecause_test

// Process-level cluster chaos: a primary, two followers, and a router —
// four real pcserved processes on real sockets. The primary dies by
// SIGKILL mid-enrollment; the router must promote the most-caught-up
// follower, and every enrollment acked before the kill must be present
// on the new primary. The dead primary's WAL then goes through
// -wal.verify, which must classify it clean or torn-tail — never
// interior-corrupt — and an interior flip must be called out as such.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// clusterEnrollState mirrors the enroll ack fields the test needs.
type clusterEnrollState struct {
	Seq      uint64 `json:"seq"`
	Promoted bool   `json:"promoted"`
}

type replStatus struct {
	ID         string `json:"id"`
	Role       string `json:"role"`
	Ready      bool   `json:"ready"`
	AppliedSeq uint64 `json:"applied_seq"`
}

func getReplStatus(client *http.Client, base string) (replStatus, error) {
	var st replStatus
	resp, err := client.Get(base + "/v1/repl/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func TestPcservedClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dirs := map[string]string{
		"primary": t.TempDir(),
		"f1":      t.TempDir(),
		"f2":      t.TempDir(),
	}
	enrollFlags := []string{"-enroll.minobs", "3", "-enroll.patience", "2", "-wal.segment", "256"}

	primaryURL, primaryCmd := startPcserved(t, append([]string{
		"-wal.dir", dirs["primary"], "-repl.min-isr", "1", "-cluster.id", "primary",
	}, enrollFlags...)...)
	f1URL, _ := startPcserved(t, append([]string{
		"-mode", "follower", "-wal.dir", dirs["f1"], "-repl.primary", primaryURL,
		"-repl.interval", "5ms", "-cluster.id", "f1",
	}, enrollFlags...)...)
	f2URL, _ := startPcserved(t, append([]string{
		"-mode", "follower", "-wal.dir", dirs["f2"], "-repl.primary", primaryURL,
		"-repl.interval", "5ms", "-cluster.id", "f2",
	}, enrollFlags...)...)
	routerURL, _ := startPcserved(t,
		"-mode", "router", "-router.backends", strings.Join([]string{primaryURL, f1URL, f2URL}, ","),
		"-router.probe", "20ms")

	client := &http.Client{Timeout: 5 * time.Second}
	const nbits = 2048
	devObs := func(dev, trial int) []uint32 {
		var pos []uint32
		for j := 0; j < 6; j++ {
			pos = append(pos, uint32(10*dev+j))
		}
		pos = append(pos, uint32(1000+(dev*31+trial*7)%(nbits-1001)))
		return pos
	}
	enroll := func(dev, trial int) (clusterEnrollState, int) {
		blob, _ := json.Marshal(map[string]any{
			"session": fmt.Sprintf("sess-%d", dev), "name": fmt.Sprintf("dev-%d", dev),
			"len": nbits, "positions": devObs(dev, trial),
		})
		resp, err := client.Post(routerURL+"/v1/enroll", "application/json", bytes.NewReader(blob))
		if err != nil {
			return clusterEnrollState{}, 0
		}
		defer resp.Body.Close()
		var st clusterEnrollState
		if resp.StatusCode == http.StatusOK {
			json.NewDecoder(resp.Body).Decode(&st)
		}
		return st, resp.StatusCode
	}
	enrollUntilAcked := func(dev, trial int) clusterEnrollState {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if st, code := enroll(dev, trial); code == http.StatusOK {
				return st
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("dev-%d trial %d never acked through the router", dev, trial)
		return clusterEnrollState{}
	}

	// Phase 1: enroll three devices to convergence through the router.
	var maxAcked uint64
	for dev := 0; dev < 3; dev++ {
		var last clusterEnrollState
		for trial := 0; trial < 4; trial++ {
			last = enrollUntilAcked(dev, trial)
			if last.Seq > maxAcked {
				maxAcked = last.Seq
			}
		}
		if !last.Promoted {
			t.Fatalf("dev-%d not promoted after 4 observations", dev)
		}
	}

	// Phase 2: SIGKILL the primary mid-life, keep enrolling; the acks
	// must resume once the router promotes a follower.
	if err := primaryCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primaryCmd.Wait()
	post := enrollUntilAcked(3, 0)
	if post.Seq == 0 {
		t.Fatal("post-failover ack carried seq 0")
	}

	// The new primary is one of the followers, and it must hold every
	// acked sequence.
	var newPrimary replStatus
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, u := range []string{f1URL, f2URL} {
			if st, err := getReplStatus(client, u); err == nil && st.Role == "primary" {
				newPrimary = st
			}
		}
		if newPrimary.Role == "primary" {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if newPrimary.Role != "primary" {
		t.Fatal("no follower took over as primary")
	}
	if newPrimary.AppliedSeq < maxAcked {
		t.Fatalf("new primary %s applied %d < max acked %d — acked enrollment lost",
			newPrimary.ID, newPrimary.AppliedSeq, maxAcked)
	}

	// Identify every pre-kill device through the router.
	for dev := 0; dev < 3; dev++ {
		blob, _ := json.Marshal(map[string]any{"len": nbits, "positions": devObs(dev, 9)})
		resp, err := client.Post(routerURL+"/v1/identify", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Match bool   `json:"match"`
			Name  string `json:"name"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || !v.Match || v.Name != fmt.Sprintf("dev-%d", dev) {
			t.Fatalf("post-failover identify dev-%d: status %d verdict %+v err %v", dev, resp.StatusCode, v, err)
		}
	}

	// Phase 3: the SIGKILLed primary's WAL passes offline verification —
	// at worst a torn tail, never interior corruption.
	bin := filepath.Join(t.TempDir(), "pcserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pcserved").CombinedOutput(); err != nil {
		t.Fatalf("building pcserved: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-wal.verify", "-wal.dir", dirs["primary"]).CombinedOutput()
	if err != nil {
		t.Fatalf("wal.verify on killed primary's log failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("records")) {
		t.Fatalf("wal.verify output unrecognizable:\n%s", out)
	}

	// An interior flip in the first of several segments must be reported
	// as corruption with a non-zero exit.
	segs, err := filepath.Glob(filepath.Join(dirs["primary"], "*.wal"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected multiple WAL segments, got %v (err %v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[18] ^= 0xFF // inside the first record's body
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-wal.verify", "-wal.dir", dirs["primary"]).CombinedOutput()
	if err == nil {
		t.Fatalf("wal.verify exited 0 on interior corruption:\n%s", out)
	}
	if !bytes.Contains(out, []byte("CORRUPT")) {
		t.Fatalf("wal.verify did not flag corruption:\n%s", out)
	}
}
