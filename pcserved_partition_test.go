package probablecause_test

// Process-level partitioned cluster: two partition-scoped primaries and
// a scatter-gather router — three real pcserved processes on real
// sockets. Keyed enrollment routes to the owning partition, scattered
// identify merges globally-namespaced verdicts, and the topology
// endpoint exposes the partition map the processes were launched with.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"probablecause/internal/cluster"
)

func TestPcservedPartitionedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	enrollFlags := []string{"-enroll.minobs", "3", "-enroll.patience", "2"}
	// Serving nodes only need the partition names from the spec (key
	// ownership and id namespacing); the router needs the real URLs.
	placeholderSpec := "p0=http://placeholder,p1=http://placeholder"
	p0URL, _ := startPcserved(t, append([]string{
		"-wal.dir", t.TempDir(), "-cluster.id", "p0-primary",
		"-partitions", placeholderSpec, "-partition.self", "p0",
	}, enrollFlags...)...)
	p1URL, _ := startPcserved(t, append([]string{
		"-wal.dir", t.TempDir(), "-cluster.id", "p1-primary",
		"-partitions", placeholderSpec, "-partition.self", "p1",
	}, enrollFlags...)...)
	routerURL, _ := startPcserved(t,
		"-mode", "router",
		"-partitions", fmt.Sprintf("p0=%s,p1=%s", p0URL, p1URL),
		"-router.probe", "20ms")

	client := &http.Client{Timeout: 5 * time.Second}
	waitReady := func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := client.Get(routerURL + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatal("scatter router never became ready")
	}
	waitReady()

	const nbits = 2048
	devObs := func(dev, trial int) []uint32 {
		var pos []uint32
		for j := 0; j < 6; j++ {
			pos = append(pos, uint32(10*dev+j))
		}
		pos = append(pos, uint32(1000+(dev*31+trial*7)%(nbits-1001)))
		return pos
	}
	type enrollAck struct {
		Promoted bool `json:"promoted"`
		EntryID  int  `json:"entry_id"`
	}
	enroll := func(dev, trial int) (enrollAck, int) {
		blob, _ := json.Marshal(map[string]any{
			"session": fmt.Sprintf("sess-%d", dev), "name": fmt.Sprintf("dev-%d", dev),
			"len": nbits, "positions": devObs(dev, trial),
		})
		resp, err := client.Post(routerURL+"/v1/enroll", "application/json", bytes.NewReader(blob))
		if err != nil {
			return enrollAck{}, 0
		}
		defer resp.Body.Close()
		var st enrollAck
		if resp.StatusCode == http.StatusOK {
			json.NewDecoder(resp.Body).Decode(&st)
		}
		return st, resp.StatusCode
	}

	// Pick three device names per partition using the same map the
	// processes derive ownership from.
	pmap, err := cluster.ParsePartitions(placeholderSpec)
	if err != nil {
		t.Fatal(err)
	}
	var devices []int
	for want := 0; want < 2; want++ {
		for i, found := 0, 0; found < 3 && i < nbits/10-1; i++ {
			if pmap.Owner(fmt.Sprintf("dev-%d", i)) == want {
				devices = append(devices, i)
				found++
			}
		}
	}
	if len(devices) != 6 {
		t.Fatalf("could not find 3 device names per partition: %v", devices)
	}

	entryOwner := map[int]int{} // dev → partition ordinal inferred from EntryID parity
	for _, dev := range devices {
		var last enrollAck
		for trial := 0; trial < 4; trial++ {
			st, code := enroll(dev, trial)
			if code != http.StatusOK {
				t.Fatalf("enroll dev-%d trial %d: status %d", dev, trial, code)
			}
			last = st
		}
		if !last.Promoted {
			t.Fatalf("dev-%d not promoted: %+v", dev, last)
		}
		entryOwner[dev] = last.EntryID % 2
		// The process's ownership agrees with the locally-derived map.
		if want := pmap.Owner(fmt.Sprintf("dev-%d", dev)); entryOwner[dev] != want {
			t.Fatalf("dev-%d enrolled into partition %d, map owner %d", dev, entryOwner[dev], want)
		}
	}

	// Scattered identify resolves devices from both partitions with ids
	// in the owner's namespace.
	for _, dev := range devices {
		blob, _ := json.Marshal(map[string]any{"len": nbits, "positions": devObs(dev, 9)})
		resp, err := client.Post(routerURL+"/v1/identify", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Match bool   `json:"match"`
			Name  string `json:"name"`
			ID    int    `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !v.Match || v.Name != fmt.Sprintf("dev-%d", dev) {
			t.Fatalf("identify dev-%d: %d %+v", dev, resp.StatusCode, v)
		}
		if v.ID%2 != entryOwner[dev] {
			t.Fatalf("dev-%d merged id %d not in partition %d's namespace", dev, v.ID, entryOwner[dev])
		}
	}

	// The topology endpoint reflects the launched map.
	resp, err := client.Get(routerURL + "/v1/cluster/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topo struct {
		KeyHash    string `json:"key_hash"`
		Partitions []struct {
			Name     string `json:"name"`
			IDStride int    `json:"id_stride"`
			Primary  string `json:"primary"`
		} `json:"partitions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if topo.KeyHash == "" || len(topo.Partitions) != 2 {
		t.Fatalf("topology %+v", topo)
	}
	wantPrimary := map[string]string{"p0": p0URL, "p1": p1URL}
	for _, p := range topo.Partitions {
		if p.IDStride != 2 || p.Primary != wantPrimary[p.Name] {
			t.Fatalf("topology partition %+v, want primary %s", p, wantPrimary[p.Name])
		}
	}

	// A partition-scoped node refuses a misdirected mutation outright.
	foreignDev := -1
	for _, dev := range devices {
		if entryOwner[dev] == 1 {
			foreignDev = dev
			break
		}
	}
	blob, _ := json.Marshal(map[string]any{
		"session": "misdirected", "name": fmt.Sprintf("dev-%d", foreignDev),
		"len": nbits, "positions": devObs(foreignDev, 0),
	})
	dresp, err := client.Post(p0URL+"/v1/enroll", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("p0 accepted a p1-owned enroll with status %d, want 421", dresp.StatusCode)
	}
}
