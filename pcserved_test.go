package probablecause_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/samplefile"
)

// startPcserved builds and launches the server on an ephemeral port,
// returning its base URL and the running command.
func startPcserved(t *testing.T, args ...string) (string, *exec.Cmd) {
	t.Helper()
	return startPcservedEnv(t, nil, args...)
}

// startPcservedEnv is startPcserved with extra environment entries (e.g.
// OBS_REPORT) appended to the inherited environment.
func startPcservedEnv(t *testing.T, env []string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pcserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pcserved").CombinedOutput(); err != nil {
		t.Fatalf("building pcserved: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return "http://" + addr, cmd
		}
	}
	t.Fatalf("pcserved never reported its address (scan err: %v)", sc.Err())
	return "", nil
}

// TestPcservedEndToEnd boots the daemon on a real socket, identifies a
// device, registers a new one over the API, drains on SIGTERM, and checks
// the mutated database landed in the snapshot.
func TestPcservedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	const nbits = 2048
	mkfp := func(seed int) *bitset.Set {
		fp := bitset.New(nbits)
		for j := 0; j < 32; j++ {
			fp.Set((seed*389 + j*61) % nbits)
		}
		return fp
	}
	seed := fingerprint.NewDB(fingerprint.DefaultThreshold)
	seed.Add("alpha", mkfp(1))
	seed.Add("beta", mkfp(2))
	dbPath := filepath.Join(dir, "fleet.pcdb")
	if err := samplefile.SaveDB(dbPath, seed); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snap.pcdb")

	base, cmd := startPcserved(t, "-db", dbPath, "-snapshot", snapPath, "-shards", "2", "-cache", "16")

	post := func(path string, body any) (int, []byte) {
		t.Helper()
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Identify a noisy output of beta.
	query := mkfp(2)
	query.Set(5)
	query.Set(7)
	code, body := post("/v1/identify", map[string]any{"len": nbits, "positions": query.Positions()})
	if code != http.StatusOK {
		t.Fatalf("identify: %d %s", code, body)
	}
	var verdict struct {
		Match bool   `json:"match"`
		Name  string `json:"name"`
	}
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatal(err)
	}
	if !verdict.Match || verdict.Name != "beta" {
		t.Fatalf("identify verdict: %s", body)
	}

	// Register gamma over the API.
	code, body = post("/v1/db", map[string]any{"name": "gamma", "len": nbits, "positions": mkfp(3).Positions()})
	if code != http.StatusOK {
		t.Fatalf("db add: %d %s", code, body)
	}

	// Drain and snapshot.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcserved exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pcserved did not drain within 15s of SIGTERM")
	}

	snap, err := samplefile.LoadDB(snapPath)
	if err != nil {
		t.Fatalf("loading snapshot: %v", err)
	}
	if snap.Len() != 3 {
		t.Fatalf("snapshot has %d entries, want 3", snap.Len())
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("snapshot missing %s (entries: %s)", name, snapNames(snap))
		}
	}
}

func snapNames(db *fingerprint.DB) string {
	var names []string
	for _, e := range db.Entries() {
		names = append(names, e.Name)
	}
	return fmt.Sprint(names)
}
