package probablecause_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/samplefile"
)

// TestPcservedObservability drives the full serving-observability surface
// over a real socket: RED metrics on /metrics (including the WAL series),
// burn rates on /slo, span trees on /debug/slowest whose stage durations
// account for the request wall time, trace headers on every response, and
// the OBS_REPORT metrics artifact left behind by a graceful SIGTERM drain.
func TestPcservedObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "OBS_SERVE.json")

	const nbits = 2048
	mkfp := func(seed int) *bitset.Set {
		fp := bitset.New(nbits)
		for j := 0; j < 32; j++ {
			fp.Set((seed*389 + j*61) % nbits)
		}
		return fp
	}
	seed := fingerprint.NewDB(fingerprint.DefaultThreshold)
	seed.Add("alpha", mkfp(1))
	seed.Add("beta", mkfp(2))
	dbPath := filepath.Join(dir, "fleet.pcdb")
	if err := samplefile.SaveDB(dbPath, seed); err != nil {
		t.Fatal(err)
	}

	base, cmd := startPcservedEnv(t, []string{"OBS_REPORT=" + reportPath},
		"-db", dbPath, "-shards", "2", "-cache", "0",
		"-wal.dir", filepath.Join(dir, "wal"),
		"-slo", "identify:p99<50ms,identify:err<1%",
		"-slow", "8")

	postTraced := func(path string, body any, trace string) (int, []byte, string) {
		t.Helper()
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", base+path, bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if trace != "" {
			req.Header.Set(obs.TraceHeader, trace)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), resp.Header.Get(obs.TraceHeader)
	}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Traffic: identifies (one carrying an inbound trace header) plus one
	// durable enrollment so the WAL series move.
	query := mkfp(2)
	query.Set(5)
	for i := 0; i < 10; i++ {
		inbound := ""
		if i == 0 {
			inbound = obs.FormatTraceHeader(0xFACE, 0)
		}
		code, body, th := postTraced("/v1/identify", map[string]any{"len": nbits, "positions": query.Positions()}, inbound)
		if code != http.StatusOK {
			t.Fatalf("identify %d: %d %s", i, code, body)
		}
		tid, _, ok := obs.ParseTraceHeader(th)
		if !ok {
			t.Fatalf("identify %d: response trace header %q unparseable", i, th)
		}
		if i == 0 && tid != 0xFACE {
			t.Fatalf("inbound trace id not adopted: header %q", th)
		}
	}
	if code, body, _ := postTraced("/v1/enroll", map[string]any{
		"session": "s1", "name": "gamma", "len": nbits, "positions": mkfp(3).Positions(),
	}, ""); code != http.StatusOK {
		t.Fatalf("enroll: %d %s", code, body)
	}

	// /metrics: RED triple for identify plus the WAL gauges (satellite 1).
	code, body := get("/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.http.identify.requests"] < 10 {
		t.Errorf("identify RED counter = %d, want ≥10", snap.Counters["server.http.identify.requests"])
	}
	for _, h := range []string{"server.http.identify.nanos", "wal.fsync_ms"} {
		if _, ok := snap.Histograms[h]; !ok {
			t.Errorf("/metrics missing histogram %s", h)
		}
	}
	if g, ok := snap.Gauges["wal.acked_seq"]; !ok || g < 1 {
		t.Errorf("wal.acked_seq gauge = %v (present %v), want ≥1", g, ok)
	}

	// /slo: the JSON report tracks the traffic; the prom form renders.
	code, body = get("/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: %d %s", code, body)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 2 {
		t.Fatalf("/slo reports %d objectives, want 2: %s", len(rep.Objectives), body)
	}
	for _, o := range rep.Objectives {
		if last := o.Windows[len(o.Windows)-1]; last.Total < 10 {
			t.Errorf("objective %s saw %d requests in its widest window, want ≥10", o.Name, last.Total)
		}
	}
	if code, body = get("/slo?format=prom"); code != http.StatusOK || !strings.Contains(string(body), "pc_slo_burn_rate") {
		t.Errorf("/slo?format=prom: %d %s", code, body)
	}

	// /debug/slowest: span trees decompose each identify into its stages,
	// and the stage durations account for the root wall time.
	code, body = get("/debug/slowest")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowest: %d", code)
	}
	var slow struct {
		Slowest []obs.SlowEntry `json:"slowest"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Slowest) == 0 {
		t.Fatal("/debug/slowest is empty after traffic")
	}
	checked := 0
	for _, e := range slow.Slowest {
		if e.Name != "identify" {
			continue
		}
		checked++
		var stages int64
		counts := map[string]int{}
		e.Spans.Walk(func(n *obs.SpanTree) {
			counts[n.Name]++
			switch n.Name {
			case "cache.get", "queue.wait", "batch":
				stages += n.DurNS
			}
		})
		for _, want := range []string{"queue.wait", "batch", "shard.identify", "decide"} {
			if counts[want] == 0 {
				t.Fatalf("slow entry %s lacks %s span: %v", e.Trace, want, counts)
			}
		}
		if stages > e.DurNS+int64(time.Millisecond) {
			t.Errorf("trace %s: stage sum %d exceeds root %d", e.Trace, stages, e.DurNS)
		}
		// The batching window dominates these requests, so the top-level
		// stages must explain at least half the wall time (the live
		// load-test in BENCH_SERVE holds the tighter 10% bound).
		if stages*2 < e.DurNS {
			t.Errorf("trace %s: stages %dns explain too little of root %dns", e.Trace, stages, e.DurNS)
		}
	}
	if checked == 0 {
		t.Fatal("no identify entries retained in the slow ring")
	}

	// /healthz carries the SLO status alongside liveness.
	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	var health struct {
		Status string `json:"status"`
		SLO    string `json:"slo"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.SLO == "" {
		t.Errorf("/healthz omits SLO status with objectives configured: %s", body)
	}

	// Graceful drain leaves the OBS_REPORT artifact (satellite 2).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcserved exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pcserved did not drain within 15s of SIGTERM")
	}
	blob, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("OBS_REPORT artifact: %v", err)
	}
	var final obs.Snapshot
	if err := json.Unmarshal(blob, &final); err != nil {
		t.Fatalf("OBS_REPORT is not a metrics snapshot: %v", err)
	}
	for _, want := range []string{"server.http.identify.requests", "wal.appends"} {
		if final.Counters[want] == 0 {
			t.Errorf("drain snapshot missing counter %s: %v", want, final.Counters)
		}
	}
	if _, ok := final.Histograms["wal.fsync_ms"]; !ok {
		t.Error("drain snapshot missing wal.fsync_ms histogram")
	}
}
